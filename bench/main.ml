(* TReX benchmark harness: regenerates every table and figure of the
   paper's evaluation (§5) against the synthetic INEX-like collections.

     dune exec bench/main.exe            -- everything
     dune exec bench/main.exe -- table1 fig4 selfman   (selected sections)
     dune exec bench/main.exe -- --quick all
     dune exec bench/main.exe -- --quick --out /tmp/bench sizes table1 io

   Sections:
     sizes         - §5.1 corpus and table sizes + summary sizes (§2.1)
     table1        - Table 1: per-query #sids / #terms / #answers
     fig4          - Figure 4: Q202, Q203 time vs k for ERA/Merge/TA/ITA
     fig5          - Figure 5: Q260, Q270
     fig6          - Figure 6: Q233, Q290, Q292
     selfman       - §4: greedy vs optimal index selection under a budget
                     sweep, with the paper's prefix S_RPL accounting
     ablation      - summary-variant (tag/incoming/±alias, A(k)) and
                     scorer ablations
     layout        - paper's skip-scanned full-term RPLs vs per-(term,sid)
                     lists; the §4 TA-vs-Merge race
     io            - page-cache size vs physical I/O on an on-disk index
     compression   - block-compressed vs raw storage layouts: bytes on
                     disk, cold-cache physical reads, rank identity
     shard         - sharded scatter-gather: shard count vs latency,
                     degraded serving, split/merge rebalance cost
     shard_proc    - process-isolated workers: supervised scatter vs
                     the in-process coordinator, spawn/handshake cost
     telemetry     - cross-process telemetry harvest overhead: supervised
                     scatter untraced vs traced vs traced+journaled
     serve         - network front door: transport overhead vs a direct
                     query, sustained QPS with p50/p99, shed rate at 2x
                     the measured capacity, socketpair vs loopback-TCP
                     worker transport
     effectiveness - P@10/MAP/nDCG against the generator's topic ground
                     truth; BM25 vs TF-IDF
     bechamel      - one Bechamel Test.make per table/figure family

   Timing protocol mirrors the paper: five runs per point, best and
   worst dropped, the remaining three averaged (--quick: three runs,
   drop none, smaller corpora and sweeps). *)

module Gen = Trex_corpus.Gen
module Queries = Trex_corpus.Queries
module Shard = Trex_shard.Shard
module Supervisor = Trex_shard.Supervisor
module Summary = Trex_summary.Summary
module Strategy = Trex.Strategy
module Translate = Trex.Translate

let quick = ref false
let sections = ref []

(* Supervised shard workers exec their parent's binary, so the bench
   must answer the shard-worker argv before any section parsing. *)
let () =
  match Array.to_list Sys.argv with
  | _ :: "shard-worker" :: rest ->
      let rec get_opt key = function
        | k :: v :: _ when k = key -> Some v
        | _ :: tl -> get_opt key tl
        | [] -> None
      in
      let get key =
        match get_opt key rest with
        | Some v -> v
        | None ->
            prerr_endline ("shard-worker: missing " ^ key);
            exit 2
      in
      let dir = get "--dir" and shard = get "--shard" in
      (match get_opt "--listen" rest with
      | Some addr -> Supervisor.worker_listen ~dir ~shard ~addr ()
      | None -> Supervisor.worker_main ~dir ~shard ())
  | _ -> ()

let () =
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
        quick := true;
        parse rest
    | "--out" :: dir :: rest ->
        Bench_out.set_dir dir;
        parse rest
    | [ "--out" ] -> failwith "--out requires a directory argument"
    | "all" :: rest -> parse rest
    | s :: rest ->
        sections := s :: !sections;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv))

let want section = !sections = [] || List.mem section !sections

let header title = Printf.printf "\n=== %s ===\n%!" title

(* ---- timing protocol ---- *)

let time_once f =
  let t0 = Trex_util.Stopclock.now () in
  let result = f () in
  (result, Trex_util.Stopclock.now () -. t0)

(* Five runs, drop best and worst, average the rest (paper §5.1). *)
let trim_mean times =
  let runs = List.length times in
  let sorted = List.sort compare times in
  let trimmed =
    if runs < 5 then sorted else List.filteri (fun i _ -> i > 0 && i < runs - 1) sorted
  in
  List.fold_left ( +. ) 0.0 trimmed /. float_of_int (List.length trimmed)

let robust_time f =
  let runs = if !quick then 3 else 5 in
  ignore (f ()) (* warmup: populate caches, trigger pending GC work *);
  trim_mean (List.init runs (fun _ -> snd (time_once f)))

(* Same protocol but over a measurement the run itself reports (ITA's
   heap-excluded clock). *)
let robust_reported f =
  let runs = if !quick then 3 else 5 in
  ignore (f ());
  trim_mean (List.init runs (fun _ -> f ()))

(* ---- engines ---- *)

let build_engine (coll : Gen.collection) =
  let env = Trex.Env.in_memory () in
  let t0 = Unix.gettimeofday () in
  let engine = Trex.build ~env ~alias:coll.alias (coll.docs ()) in
  Printf.printf "built %s: %d docs in %.1fs\n%!" coll.name coll.doc_count
    (Unix.gettimeofday () -. t0);
  engine

let engines =
  lazy
    (let ieee_n = if !quick then 120 else 400 in
     let wiki_n = if !quick then 200 else 700 in
     let ieee_coll = Gen.ieee ~doc_count:ieee_n () in
     let wiki_coll = Gen.wikipedia ~doc_count:wiki_n () in
     let ieee = build_engine ieee_coll in
     let wiki = build_engine wiki_coll in
     ((ieee_coll, ieee), (wiki_coll, wiki)))

let engine_for = function
  | Queries.Ieee -> snd (fst (Lazy.force engines))
  | Queries.Wikipedia -> snd (snd (Lazy.force engines))

let coll_for = function
  | Queries.Ieee -> fst (fst (Lazy.force engines))
  | Queries.Wikipedia -> fst (snd (Lazy.force engines))

(* Translation of a paper query against its engine. *)
let translated (q : Queries.t) =
  let engine = engine_for q.collection in
  let o = Trex.translate engine (Trex.parse engine q.nexi) in
  (engine, Translate.all_sids o, Translate.all_terms o)

let materialized = ref false

let materialize_all () =
  if not !materialized then begin
    materialized := true;
    Printf.printf "materializing RPLs+ERPLs for all 7 queries...\n%!";
    List.iter
      (fun (q : Queries.t) ->
        let engine = engine_for q.collection in
        ignore (Trex.materialize engine q.nexi))
      Queries.all
  end

(* ---- section: sizes (§5.1 and §2.1) ---- *)

let human_bytes n =
  if n > 1_000_000 then Printf.sprintf "%.2f MB" (float_of_int n /. 1e6)
  else Printf.sprintf "%.1f KB" (float_of_int n /. 1e3)

let summary_sizes (coll : Gen.collection) =
  (* Build the four summary variants of §2.1 in one pass over the
     corpus. *)
  let variants =
    [
      ("incoming", Summary.create Summary.Incoming);
      ("tag", Summary.create Summary.Tag);
      ("alias incoming", Summary.create ~alias:coll.alias Summary.Incoming);
      ("alias tag", Summary.create ~alias:coll.alias Summary.Tag);
    ]
  in
  Seq.iter
    (fun (_, xml) ->
      let doc = Trex_xml.Dom.parse xml in
      List.iter (fun (_, s) -> ignore (Summary.observe_document s doc)) variants)
    (coll.docs ());
  variants

let section_sizes () =
  header "SIZES (paper 5.1 corpus/table sizes, 2.1 summary sizes)";
  Printf.printf
    "paper: IEEE 16,819 docs 0.76GB; Elements 1.52GB, PostingLists 8.05GB\n";
  Printf.printf
    "paper: Wikipedia 659,388 docs 4.6GB; Elements 3.91GB, PostingLists 48.1GB\n";
  Printf.printf
    "paper: IEEE summaries: incoming 11563, tag 185, alias incoming 7860, alias tag 145\n\n";
  List.iter
    (fun cid ->
      let coll = coll_for cid in
      let engine = engine_for cid in
      let stats = Trex.Index.stats (Trex.index engine) in
      let sizes = Trex.table_sizes engine in
      Printf.printf "%s: %d docs, %s XML, %d elements, %d terms, %d postings\n"
        coll.name stats.doc_count (human_bytes stats.total_bytes)
        stats.element_count stats.term_count stats.posting_count;
      Printf.printf "  Elements table:     %s\n" (human_bytes sizes.elements_bytes);
      Printf.printf "  PostingLists table: %s\n" (human_bytes sizes.postings_bytes);
      Printf.printf
        "  (postings/elements ratio %.1fx; paper has 5.3x IEEE, 12.3x Wiki)\n"
        (float_of_int sizes.postings_bytes /. float_of_int (max 1 sizes.elements_bytes));
      Bench_out.record ~section:"sizes" ~query:coll.name ~strategy:"index_build"
        ~k:0 ~ms:0.0
        [
          ("docs", stats.doc_count);
          ("elements", stats.element_count);
          ("terms", stats.term_count);
          ("postings", stats.posting_count);
          ("elements_bytes", sizes.elements_bytes);
          ("postings_bytes", sizes.postings_bytes);
        ];
      List.iter
        (fun (name, s) ->
          Printf.printf "  %-16s summary: %5d nodes%s\n" name (Summary.node_count s)
            (if Summary.nesting_free s then "" else "  [not nesting-free]"))
        (summary_sizes coll))
    [ Queries.Ieee; Queries.Wikipedia ];
  Bench_out.flush ~quick:!quick "sizes"

(* ---- section: table 1 ---- *)

let paper_table1 =
  (* id -> (#sids, #terms, #answers) from the paper's Table 1. *)
  [
    ("202", (11, 3, 9169)); ("203", (10, 3, 480)); ("233", (2, 2, 458));
    ("260", (1863, 5, 108538)); ("270", (10, 3, 92464)); ("290", (1, 2, 4860));
    ("292", (35, 5, 448));
  ]

let answers_cache : (string, int) Hashtbl.t = Hashtbl.create 8

let count_answers (q : Queries.t) =
  match Hashtbl.find_opt answers_cache q.id with
  | Some n -> n
  | None ->
      let engine, sids, terms = translated q in
      let o =
        Strategy.evaluate (Trex.index engine) ~scoring:(Trex.scoring engine) ~sids
          ~terms ~k:max_int Strategy.Era_method
      in
      let n = List.length o.Strategy.answers in
      Hashtbl.add answers_cache q.id n;
      n

let section_table1 () =
  header "TABLE 1: queries, translation sizes, answer counts";
  Printf.printf "%-4s %-10s %7s %7s %9s | %9s %7s %9s\n" "id" "collection" "#sids"
    "#terms" "#answers" "p#sids" "p#terms" "p#answers";
  List.iter
    (fun (q : Queries.t) ->
      let _, sids, terms = translated q in
      let n_answers = count_answers q in
      let p_sids, p_terms, p_answers =
        match List.assoc_opt q.id paper_table1 with
        | Some v -> v
        | None -> (0, 0, 0)
      in
      Bench_out.record ~section:"table1" ~query:q.id ~strategy:"translate" ~k:0
        ~ms:0.0
        [
          ("sids", List.length sids);
          ("terms", List.length terms);
          ("answers", n_answers);
        ];
      Printf.printf "%-4s %-10s %7d %7d %9d | %9d %7d %9d\n" q.id
        (match q.collection with Queries.Ieee -> "IEEE" | Queries.Wikipedia -> "Wiki")
        (List.length sids) (List.length terms) n_answers p_sids p_terms p_answers)
    Queries.all;
  Printf.printf
    "(p* columns: paper values at full INEX scale; shapes to match, not magnitudes)\n";
  Bench_out.flush ~quick:!quick "table1"

(* ---- sections: figures 4-6 ---- *)

let k_sweep n_answers =
  let base = [ 1; 5; 10; 25; 50; 100; 250; 500; 1000; 2500; 5000; 10000 ] in
  let upper = max 10 n_answers in
  List.filter (fun k -> k <= upper) base @ [ upper ]
  |> List.sort_uniq compare

let run_method engine ~sids ~terms ~k m () =
  ignore
    (Strategy.evaluate (Trex.index engine) ~scoring:(Trex.scoring engine) ~sids ~terms
       ~k m)

let figure_for_query ~section (q : Queries.t) =
  let engine, sids, terms = translated q in
  ignore (Trex.materialize engine q.nexi);
  let n_answers = count_answers q in
  Printf.printf "\nQuery %s (%s): %d sids, %d terms, %d answers\n  NEXI: %s\n" q.id
    (match q.collection with Queries.Ieee -> "IEEE" | Queries.Wikipedia -> "Wiki")
    (List.length sids) (List.length terms) n_answers q.nexi;
  let t_era =
    robust_time (run_method engine ~sids ~terms ~k:max_int Strategy.Era_method)
  in
  let t_merge =
    robust_time (run_method engine ~sids ~terms ~k:max_int Strategy.Merge_method)
  in
  (* "All answers" rows: ERA and Merge ignore k, report k = #answers. *)
  Bench_out.record ~section ~query:q.id ~strategy:"ERA" ~k:n_answers
    ~ms:(t_era *. 1000.0) [];
  Bench_out.record ~section ~query:q.id ~strategy:"Merge" ~k:n_answers
    ~ms:(t_merge *. 1000.0) [];
  Printf.printf "  ERA   (all answers): %8.2f ms\n" (t_era *. 1000.0);
  Printf.printf "  Merge (all answers): %8.2f ms\n" (t_merge *. 1000.0);
  Printf.printf "  %8s %12s %12s %10s %10s %8s %8s\n" "k" "TA (ms)" "ITA (ms)"
    "TA reads" "heap ops" "heap%" "early";
  let index = Trex.index engine in
  List.iter
    (fun k ->
      let t_ta = robust_time (run_method engine ~sids ~terms ~k Strategy.Ta_method) in
      (* ITA's time is the run's own heap-excluded clock, not wall
         time around the call. *)
      let t_ita =
        robust_reported (fun () ->
            let _, stats = Trex.Ta.run index ~sids ~terms ~k ~ideal_heap:true () in
            stats.elapsed_seconds)
      in
      (* One instrumented ITA run for the machine-independent stats and
         the measured heap-management share that ITA excludes. *)
      let _, stats = Trex.Ta.run index ~sids ~terms ~k ~ideal_heap:true () in
      let total = stats.elapsed_seconds +. stats.heap_seconds in
      let heap_pct = if total > 0.0 then 100.0 *. stats.heap_seconds /. total else 0.0 in
      (* TA and ITA do identical algorithmic work (ideal_heap only
         changes the clock), so one stats record serves both rows. *)
      let counters =
        [
          ("sorted_accesses", stats.sorted_accesses);
          ("skipped_accesses", stats.skipped_accesses);
          ("heap_operations", stats.heap_operations);
          ("heap_pushes", stats.heap_pushes);
          ("heap_evictions", stats.heap_evictions);
          ("candidates", stats.candidates);
          ("stopped_early", if stats.stopped_early then 1 else 0);
        ]
      in
      Bench_out.record ~section ~query:q.id ~strategy:"TA" ~k ~ms:(t_ta *. 1000.0)
        counters;
      Bench_out.record ~section ~query:q.id ~strategy:"ITA" ~k ~ms:(t_ita *. 1000.0)
        counters;
      Printf.printf "  %8d %12.2f %12.2f %10d %10d %7.1f%% %8s\n" k (t_ta *. 1000.0)
        (t_ita *. 1000.0) stats.sorted_accesses stats.heap_operations heap_pct
        (if stats.stopped_early then "yes" else "no"))
    (k_sweep n_answers);
  (t_era, t_merge)

let expect label cond =
  Printf.printf "  shape[%s]: %s\n" label (if cond then "OK" else "DIFFERS")

let section_figure ~section name ids note =
  header (Printf.sprintf "%s: evaluation time vs k (%s)" name note);
  List.iter
    (fun id ->
      let q = Queries.find id in
      let t_era, t_merge = figure_for_query ~section q in
      expect (id ^ ": Merge beats ERA") (t_merge < t_era))
    ids;
  Bench_out.flush ~quick:!quick section

(* ---- section: selfman ---- *)

let section_selfman () =
  header "SELF-MANAGEMENT (paper 4): greedy vs optimal under a budget sweep";
  materialize_all ();
  let ieee_queries = Queries.for_collection Queries.Ieee in
  let n = List.length ieee_queries in
  let workload =
    Trex.Workload.create
      (List.mapi
         (fun i (q : Queries.t) ->
           let _, sids, terms = translated q in
           (* Skew the frequencies so the choice is interesting. *)
           let frequency = float_of_int (n - i) *. 2.0 /. float_of_int (n * (n + 1)) in
           { Trex.Workload.id = q.id; sids; terms; k = 10; frequency })
         ieee_queries)
  in
  let engine = engine_for Queries.Ieee in
  let runs = if !quick then 1 else 3 in
  Printf.printf "measuring %d workload queries (%d runs each)...\n%!"
    (List.length (Trex.Workload.queries workload))
    runs;
  (* S_RPL follows the paper: only the prefix TA reads until its
     stopping condition is charged (prefix_rpls). *)
  let profiles =
    List.map
      (fun q ->
        Trex.Cost.measure (Trex.index engine) ~scoring:(Trex.scoring engine) ~runs
          ~prefix_rpls:true q)
      (Trex.Workload.queries workload)
  in
  List.iter
    (fun (p : Trex.Cost.profile) ->
      Printf.printf
        "  %s: f=%.2f ERA %7.2fms Merge %7.2fms TA %7.2fms | ERPLs %s RPLs %s%s\n"
        p.id p.frequency (p.time_era *. 1e3) (p.time_merge *. 1e3) (p.time_ta *. 1e3)
        (human_bytes (List.fold_left (fun a (_, b) -> a + b) 0 p.erpl_lists))
        (human_bytes (List.fold_left (fun a (_, b) -> a + b) 0 p.rpl_lists))
        (match p.rpl_prefix with
        | Some d -> Printf.sprintf " (prefix %d/list)" d
        | None -> ""))
    profiles;
  let full = Trex.Advisor.greedy ~budget:max_int profiles in
  let total_bytes = full.bytes_used in
  Printf.printf "\nfull materialization of best choices: %s, saving %.2f ms\n"
    (human_bytes total_bytes)
    (full.expected_saving *. 1e3);
  Printf.printf "%8s | %-26s %11s | %-26s %11s | %5s\n" "budget" "greedy choices"
    "saving(ms)" "optimal choices" "saving(ms)" "2-apx";
  List.iter
    (fun pct ->
      let budget = total_bytes * pct / 100 in
      let g = Trex.Advisor.greedy ~budget profiles in
      let o = Trex.Advisor.branch_and_bound ~budget profiles in
      let show plan =
        String.concat ","
          (List.filter_map
             (fun (id, c) ->
               match c with
               | Trex.Advisor.No_index -> None
               | Trex.Advisor.Use_erpl -> Some (id ^ ":M")
               | Trex.Advisor.Use_rpl -> Some (id ^ ":T")
               | Trex.Advisor.Use_erpl_raw -> Some (id ^ ":Mr")
               | Trex.Advisor.Use_rpl_raw -> Some (id ^ ":Tr"))
             plan.Trex.Advisor.decisions)
      in
      Printf.printf "%7d%% | %-26s %11.2f | %-26s %11.2f | %5s\n" pct (show g)
        (g.expected_saving *. 1e3) (show o) (o.expected_saving *. 1e3)
        (if o.expected_saving <= (2.0 *. g.expected_saving) +. 1e-12 then "OK"
         else "VIOLATED"))
    [ 10; 25; 50; 75; 100 ];
  (* The prefix_rpls measurement left some RPLs truncated on the shared
     engine; restore complete lists for the sections that follow. *)
  let index = Trex.index engine in
  List.iter
    (fun (term, sid, _, _) ->
      if Trex.Rpl.list_bound index Trex.Rpl.Rpl ~term ~sid > 0.0 then
        Trex.Rpl.drop index Trex.Rpl.Rpl ~term ~sid)
    (Trex.Rpl.catalog index Trex.Rpl.Rpl);
  List.iter
    (fun (q : Queries.t) ->
      if q.collection = Queries.Ieee then ignore (Trex.materialize engine q.nexi))
    Queries.all

(* ---- section: ablation ---- *)

let section_ablation () =
  header "ABLATION: summary variant and scorer choice";
  let coll = coll_for Queries.Ieee in
  let variants =
    [
      ("tag", Summary.Tag, Trex.Alias.identity);
      ("alias tag", Summary.Tag, coll.alias);
      ("incoming", Summary.Incoming, Trex.Alias.identity);
      ("alias incoming", Summary.Incoming, coll.alias);
    ]
  in
  Printf.printf "%-16s %-6s %6s %9s %10s %9s\n" "summary" "query" "#sids" "#answers"
    "ERA ms" "nest-free";
  List.iter
    (fun (name, criterion, alias) ->
      let env = Trex.Env.in_memory () in
      let engine = Trex.build ~env ~summary_criterion:criterion ~alias (coll.docs ()) in
      (* A summary that is not nesting-free (paper §2.1) breaks ERA's
         one-element-per-extent invariant; the row is still shown to
         quantify what the constraint costs. *)
      let nest_free = Summary.nesting_free (Trex.summary engine) in
      List.iter
        (fun id ->
          let q = Queries.find id in
          let tr = Trex.translate engine (Trex.parse engine q.nexi) in
          let sids = Translate.all_sids tr and terms = Translate.all_terms tr in
          let o =
            Strategy.evaluate (Trex.index engine) ~scoring:(Trex.scoring engine) ~sids
              ~terms ~k:max_int Strategy.Era_method
          in
          let t =
            robust_time (run_method engine ~sids ~terms ~k:max_int Strategy.Era_method)
          in
          Printf.printf "%-16s %-6s %6d %9d %10.2f %9s\n" name id (List.length sids)
            (List.length o.Strategy.answers)
            (t *. 1000.0)
            (if nest_free then "yes" else "NO"))
        [ "202"; "270" ])
    variants;
  (* A(k) sweep: how the A(k)-index family trades summary size for
     sid-set precision (k=1 ~ tag, large k ~ incoming). *)
  Printf.printf "\nA(k) sweep (alias mapping applied):\n";
  Printf.printf "%-10s %7s %6s %6s %9s\n" "summary" "nodes" "q202" "q270" "nest-free";
  List.iter
    (fun k ->
      let env = Trex.Env.in_memory () in
      let engine =
        Trex.build ~env ~summary_criterion:(Summary.A_k k) ~alias:coll.alias
          (coll.docs ())
      in
      let sid_count id =
        let q = Queries.find id in
        List.length
          (Translate.all_sids (Trex.translate engine (Trex.parse engine q.nexi)))
      in
      Printf.printf "%-10s %7d %6d %6d %9s\n"
        (Printf.sprintf "A(%d)" k)
        (Summary.node_count (Trex.summary engine))
        (sid_count "202") (sid_count "270")
        (if Summary.nesting_free (Trex.summary engine) then "yes" else "NO"))
    [ 1; 2; 3; 4 ];
  (* Scorer ablation: BM25 vs TF-IDF top-10 overlap on Q270. *)
  let q = Queries.find "270" in
  let bm25 = engine_for Queries.Ieee in
  let env2 = Trex.Env.in_memory () in
  let tfidf =
    Trex.build ~env:env2 ~alias:coll.alias ~scoring:Trex.Scorer.Tf_idf (coll.docs ())
  in
  let top10 engine =
    (Trex.query engine ~k:10 ~method_:Strategy.Era_method q.nexi).Trex.strategy
      .Strategy.answers
    |> List.map (fun (e : Trex.Answer.entry) ->
           (e.element.Trex.Types.docid, e.element.Trex.Types.endpos))
  in
  let a = top10 bm25 and b = top10 tfidf in
  let overlap = List.length (List.filter (fun x -> List.mem x b) a) in
  Printf.printf "\nscorer ablation (Q270): BM25 vs TF-IDF top-10 overlap = %d/10\n"
    overlap

(* ---- section: layout (RPL key layout + race) ---- *)

let section_layout () =
  header "RPL LAYOUT: paper's full-term skip-scan vs per-(term,sid) merge";
  materialize_all ();
  Printf.printf
    "The paper keys RPLs (token, score, sid, ...) and TA skips foreign\n\
     sids; this implementation defaults to per-(term, sid) lists merged\n\
     at read time (DESIGN.md). The ablation quantifies the difference.\n\n";
  Printf.printf "%-5s %8s | %10s %10s | %10s %10s %9s\n" "query" "k" "merged ms"
    "reads" "full ms" "reads" "skipped";
  List.iter
    (fun id ->
      let q = Queries.find id in
      let engine, sids, terms = translated q in
      let index = Trex.index engine in
      ignore
        (Trex.Rpl.Full.build index ~scoring:(Trex.scoring engine) ~terms ());
      List.iter
        (fun k ->
          let t_merged =
            robust_reported (fun () ->
                let _, s = Trex.Ta.run index ~sids ~terms ~k () in
                s.elapsed_seconds)
          in
          let t_full =
            robust_reported (fun () ->
                let _, s = Trex.Ta.run index ~sids ~terms ~k ~use_full_rpls:true () in
                s.elapsed_seconds)
          in
          let _, sm = Trex.Ta.run index ~sids ~terms ~k () in
          let _, sf = Trex.Ta.run index ~sids ~terms ~k ~use_full_rpls:true () in
          Printf.printf "%-5s %8d | %10.2f %10d | %10.2f %10d %9d\n" id k
            (t_merged *. 1e3) sm.sorted_accesses (t_full *. 1e3) sf.sorted_accesses
            sf.skipped_accesses)
        [ 10; 1000 ])
    [ "202"; "260" ];
  Printf.printf
    "\nRACE (paper 4: evaluate TA and Merge, answer from the faster):\n";
  List.iter
    (fun id ->
      let q = Queries.find id in
      let engine, sids, terms = translated q in
      List.iter
        (fun k ->
          let o =
            Strategy.race (Trex.index engine) ~scoring:(Trex.scoring engine) ~sids
              ~terms ~k
          in
          Printf.printf "  %s k=%-6d -> %s\n" id k o.Strategy.detail)
        [ 10; 100000 ])
    [ "202"; "233"; "270" ]

(* ---- section: io (pager cache sweep) ---- *)

let section_io () =
  header "STORAGE I/O: page-cache size vs physical reads (on-disk index)";
  let dir = Filename.temp_file "trex_bench_io" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let coll = Gen.ieee ~doc_count:(if !quick then 60 else 150) ~seed:77 () in
  (* Build once with a generous cache. *)
  let build_env = Trex.Env.on_disk ~cache_pages:8192 dir in
  let engine = Trex.build ~env:build_env ~alias:coll.alias (coll.docs ()) in
  let q = Queries.find "270" in
  let tr = Trex.translate engine (Trex.parse engine q.nexi) in
  let sids = Translate.all_sids tr and terms = Translate.all_terms tr in
  ignore
    (Trex.Rpl.build (Trex.index engine) ~scoring:(Trex.scoring engine) ~sids ~terms
       ~kinds:[ Trex.Rpl.Rpl; Trex.Rpl.Erpl ] ());
  Trex.Env.close build_env;
  Printf.printf "%12s | %12s %12s %12s | %10s\n" "cache pages" "phys reads"
    "cache hits" "hit ratio" "ERA ms";
  List.iter
    (fun cache_pages ->
      let env = Trex.Env.on_disk ~cache_pages dir in
      let engine = Trex.attach ~env () in
      let t =
        robust_time (fun () ->
            ignore
              (Strategy.evaluate (Trex.index engine) ~scoring:(Trex.scoring engine)
                 ~sids ~terms ~k:max_int Strategy.Era_method))
      in
      let reads, hits =
        List.fold_left
          (fun (r, h) (_, (s : Trex_storage.Pager.stats)) ->
            (r + s.physical_reads, h + s.cache_hits))
          (0, 0) (Trex.Env.io_stats env)
      in
      let ratio =
        if reads + hits = 0 then 0.0
        else float_of_int hits /. float_of_int (reads + hits)
      in
      Bench_out.record ~section:"io" ~query:"270" ~strategy:"ERA" ~k:0
        ~ms:(t *. 1e3)
        [
          ("cache_pages", cache_pages);
          ("physical_reads", reads);
          ("cache_hits", hits);
        ];
      Printf.printf "%12d | %12d %12d %11.1f%% | %10.2f\n" cache_pages reads hits
        (100.0 *. ratio) (t *. 1e3);
      Trex.Env.close env)
    [ 8; 32; 128; 1024; 8192 ];
  Bench_out.flush ~quick:!quick "io"

(* ---- section: compression (block-compressed vs raw layouts) ---- *)

let section_compression () =
  header "COMPRESSION: block-compressed vs raw storage (on-disk, same corpus)";
  let coll = Gen.ieee ~doc_count:(if !quick then 60 else 150) ~seed:77 () in
  let q = Queries.find "270" in
  let k = 10 in
  (* Build the same corpus twice on disk, once per layout, and
     materialize query 270's RPLs+ERPLs in the matching layout. *)
  let variant name ~compress ~layout =
    let dir = Filename.temp_file "trex_bench_comp" "" in
    Sys.remove dir;
    Unix.mkdir dir 0o755;
    let build_env = Trex.Env.on_disk ~cache_pages:8192 dir in
    let engine =
      Trex.build ~env:build_env ~alias:coll.alias ~compress (coll.docs ())
    in
    let tr = Trex.translate engine (Trex.parse engine q.nexi) in
    let sids = Translate.all_sids tr and terms = Translate.all_terms tr in
    ignore
      (Trex.Rpl.build (Trex.index engine) ~scoring:(Trex.scoring engine) ~sids
         ~terms ~kinds:[ Trex.Rpl.Rpl; Trex.Rpl.Erpl ] ~layout ());
    let sizes = Trex.table_sizes engine in
    Trex.Env.close build_env;
    Bench_out.record ~section:"compression" ~query:q.id
      ~strategy:("sizes-" ^ name) ~k:0 ~ms:0.0
      [
        ("postings_bytes", sizes.postings_bytes);
        ("rpls_bytes", sizes.rpls_bytes);
        ("erpls_bytes", sizes.erpls_bytes);
      ];
    Printf.printf "%-11s postings %10s | RPLs %10s | ERPLs %10s\n" name
      (human_bytes sizes.postings_bytes)
      (human_bytes sizes.rpls_bytes)
      (human_bytes sizes.erpls_bytes);
    (name, dir, sids, terms, sizes)
  in
  let raw = variant "raw" ~compress:false ~layout:Trex.Rpl.Raw in
  let comp = variant "compressed" ~compress:true ~layout:Trex.Rpl.Compressed in
  let (_, _, _, _, raw_sizes) = raw and (_, _, _, _, comp_sizes) = comp in
  Printf.printf "saving: postings %.0f%%, RPLs %.0f%%, ERPLs %.0f%%\n"
    (100.0
    *. (1.0
       -. float_of_int comp_sizes.postings_bytes
          /. float_of_int (max 1 raw_sizes.postings_bytes)))
    (100.0
    *. (1.0
       -. float_of_int comp_sizes.rpls_bytes
          /. float_of_int (max 1 raw_sizes.rpls_bytes)))
    (100.0
    *. (1.0
       -. float_of_int comp_sizes.erpls_bytes
          /. float_of_int (max 1 raw_sizes.erpls_bytes)));
  let reads_of env =
    List.fold_left
      (fun r (_, (s : Trex_storage.Pager.stats)) -> r + s.physical_reads)
      0 (Trex.Env.io_stats env)
  in
  (* Cold-cache physical reads (fresh attach, tiny cache) per strategy,
     then warm timings under the usual protocol. *)
  let run_variant (name, dir, sids, terms, _) =
    List.map
      (fun (label, method_) ->
        let env = Trex.Env.on_disk ~cache_pages:32 dir in
        let engine = Trex.attach ~env () in
        let index = Trex.index engine and scoring = Trex.scoring engine in
        let before = reads_of env in
        let outcome = Strategy.evaluate index ~scoring ~sids ~terms ~k method_ in
        let reads = reads_of env - before in
        let t =
          robust_time (fun () ->
              ignore (Strategy.evaluate index ~scoring ~sids ~terms ~k method_))
        in
        Bench_out.record ~section:"compression" ~query:q.id
          ~strategy:(label ^ "-" ^ name) ~k ~ms:(t *. 1e3)
          [ ("physical_reads", reads) ];
        Printf.printf "%-11s %-6s %4d cold reads | %8.2f ms\n" name label reads
          (t *. 1e3);
        (* Merge again directly for the block-decode accounting the
           strategy façade hides. *)
        if label = "Merge" then begin
          let _, ms = Trex.Merge.run index ~sids ~terms in
          Bench_out.record ~section:"compression" ~query:q.id
            ~strategy:("Merge-blocks-" ^ name) ~k ~ms:0.0
            [
              ("blocks_decoded", ms.Trex.Merge.blocks_decoded);
              ("entries_read", ms.Trex.Merge.entries_read);
            ]
        end;
        Trex.Env.close env;
        (label, outcome.Strategy.answers))
      [
        ("ERA", Strategy.Era_method);
        ("TA", Strategy.Ta_method);
        ("Merge", Strategy.Merge_method);
      ]
  in
  let raw_answers = run_variant raw in
  let comp_answers = run_variant comp in
  (* Rank identity: compressed storage must serve bit-identical answers
     — same elements, same order, same scores (exact rescore via the
     per-segment score dictionary). A mismatch fails the bench run. *)
  List.iter2
    (fun (label, (a : Trex.Answer.entry list)) (_, b) ->
      let key (e : Trex.Answer.entry) =
        ( e.Trex.Answer.element.Trex.Types.docid,
          e.Trex.Answer.element.Trex.Types.endpos,
          e.Trex.Answer.element.Trex.Types.sid,
          e.Trex.Answer.score )
      in
      if List.map key a <> List.map key b then
        failwith
          (Printf.sprintf
             "compression: %s answers differ between raw and compressed \
              layouts"
             label))
    raw_answers comp_answers;
  Printf.printf "rank identity: ERA/TA/Merge answers bit-identical across layouts\n";
  Bench_out.flush ~quick:!quick "compression"

(* ---- section: shard ---- *)

let section_shard () =
  header "SHARDED SCATTER-GATHER: shard count vs latency, degradation, rebalance";
  let coll = Gen.ieee ~doc_count:(if !quick then 40 else 120) ~seed:88 () in
  let docs = List.of_seq (coll.docs ()) in
  let q = Queries.find "270" in
  let k = 10 in
  (* Single-environment reference point. *)
  let env = Trex.Env.in_memory () in
  let engine = Trex.build ~env ~alias:coll.alias (List.to_seq docs) in
  let t_single = robust_time (fun () -> ignore (Trex.query engine ~k q.nexi)) in
  Bench_out.record ~section:"shard" ~query:q.id ~strategy:"single-env" ~k
    ~ms:(t_single *. 1e3)
    [ ("shards", 1); ("degraded_shards", 0) ];
  Printf.printf "%12s | %10s %14s %15s\n" "shards" "ms" "entries read"
    "degraded shards";
  Printf.printf "%12s | %10.2f %14s %15d\n" "single-env" (t_single *. 1e3) "-" 0;
  List.iter
    (fun n ->
      let dir = Filename.temp_file "trex_bench_shard" "" in
      Sys.remove dir;
      Unix.mkdir dir 0o755;
      let t = Shard.create ~dir ~shards:n ~alias:coll.alias docs in
      let tq = robust_time (fun () -> ignore (Shard.query t ~k q.nexi)) in
      let r = Shard.query t ~k q.nexi in
      let entries =
        List.fold_left
          (fun acc (s : Shard.shard_report) -> acc + s.Shard.r_entries_read)
          0 r.Shard.reports
      in
      Bench_out.record ~section:"shard" ~query:q.id ~strategy:"scatter-gather" ~k
        ~ms:(tq *. 1e3)
        [
          ("shards", n);
          ("entries_read", entries);
          ("degraded_shards", List.length r.Shard.degraded_shards);
        ];
      Printf.printf "%12d | %10.2f %14d %15d\n" n (tq *. 1e3) entries
        (List.length r.Shard.degraded_shards);
      if n = 4 then begin
        (* Degraded serving: an already-expired deadline skips every
           shard — the floor cost of answering from nothing. *)
        let td =
          robust_time (fun () -> ignore (Shard.query t ~k ~deadline_ms:0.0 q.nexi))
        in
        let rd = Shard.query t ~k ~deadline_ms:0.0 q.nexi in
        Bench_out.record ~section:"shard" ~query:q.id ~strategy:"degraded" ~k
          ~ms:(td *. 1e3)
          [ ("shards", n); ("degraded_shards", List.length rd.Shard.degraded_shards) ];
        Printf.printf "%12s | %10.2f %14s %15d\n" "deadline=0" (td *. 1e3) "-"
          (List.length rd.Shard.degraded_shards);
        (* Rebalance cost, timed once — split and merge mutate the map. *)
        let t0 = Unix.gettimeofday () in
        let a, b = Shard.split t "shard-001" in
        let t_split = (Unix.gettimeofday () -. t0) *. 1e3 in
        let t0 = Unix.gettimeofday () in
        ignore (Shard.merge t a.Shard.name b.Shard.name);
        let t_merge = (Unix.gettimeofday () -. t0) *. 1e3 in
        Bench_out.record ~section:"shard" ~query:q.id ~strategy:"split" ~k
          ~ms:t_split [ ("shards", n) ];
        Bench_out.record ~section:"shard" ~query:q.id ~strategy:"merge" ~k
          ~ms:t_merge [ ("shards", n) ];
        Printf.printf "%12s | %10.2f\n" "split" t_split;
        Printf.printf "%12s | %10.2f\n" "merge" t_merge
      end;
      Shard.close t)
    [ 1; 2; 4; 8 ];
  Bench_out.flush ~quick:!quick "shard"

(* ---- section: shard_proc ---- *)

let section_shard_proc () =
  header
    "PROCESS-ISOLATED WORKERS: supervised scatter vs in-process coordinator";
  let coll = Gen.ieee ~doc_count:(if !quick then 40 else 120) ~seed:88 () in
  let docs = List.of_seq (coll.docs ()) in
  let q = Queries.find "270" in
  let k = 10 in
  let answer_sig (r : Shard.result) =
    List.map
      (fun (e : Trex.Answer.entry) ->
        ( e.Trex.Answer.element.Trex.Types.docid,
          e.Trex.Answer.element.Trex.Types.endpos,
          e.Trex.Answer.score ))
      r.Shard.answers
  in
  Printf.printf "%8s | %12s %12s %12s\n" "shards" "in-proc ms" "process ms"
    "spawn ms";
  List.iter
    (fun n ->
      let dir = Filename.temp_file "trex_bench_sproc" "" in
      Sys.remove dir;
      Unix.mkdir dir 0o755;
      let t = Shard.create ~dir ~shards:n ~alias:coll.alias docs in
      let t_in = robust_time (fun () -> ignore (Shard.query t ~k q.nexi)) in
      let in_sig = answer_sig (Shard.query t ~k q.nexi) in
      Shard.close t;
      Bench_out.record ~section:"shard_proc" ~query:q.id ~strategy:"in-process"
        ~k ~ms:(t_in *. 1e3)
        [ ("shards", n); ("degraded_shards", 0) ];
      (* Spawn + readiness handshake, timed once: fork/exec every worker
         and wait for all Hellos — a per-open cost, not per-query. *)
      let t0 = Trex_util.Stopclock.now () in
      let sup = Supervisor.create dir in
      if not (Supervisor.await_healthy sup) then
        failwith "shard_proc: workers never became healthy";
      let t_spawn = (Trex_util.Stopclock.now () -. t0) *. 1e3 in
      Fun.protect ~finally:(fun () -> Supervisor.close sup) @@ fun () ->
      let t_proc = robust_time (fun () -> ignore (Supervisor.query sup ~k q.nexi)) in
      let r = Supervisor.query sup ~k q.nexi in
      if r.Shard.degraded_shards <> [] then
        failwith "shard_proc: healthy scatter came back degraded";
      if answer_sig r <> in_sig then
        failwith
          "shard_proc: process-path answers differ from the in-process \
           coordinator";
      Bench_out.record ~section:"shard_proc" ~query:q.id ~strategy:"process" ~k
        ~ms:(t_proc *. 1e3)
        [ ("shards", n); ("degraded_shards", 0) ];
      Bench_out.record ~section:"shard_proc" ~query:q.id ~strategy:"spawn" ~k
        ~ms:t_spawn [ ("shards", n) ];
      Printf.printf "%8d | %12.2f %12.2f %12.2f\n" n (t_in *. 1e3)
        (t_proc *. 1e3) t_spawn)
    [ 2; 4 ];
  Printf.printf "rank identity: process scatter bit-identical to in-process\n";
  Bench_out.flush ~quick:!quick "shard_proc"

(* ---- section: telemetry ---- *)

(* What the cross-process harvest costs: the same supervised scatter
   with telemetry off, with span tracing on (workers trace and ship
   their trees over the wire), and with tracing + journaling (workers
   additionally build and ship a journal record; the coordinator
   appends one merged record per query). *)
let section_telemetry () =
  header "TELEMETRY: cross-process harvest overhead on supervised scatter";
  let coll = Gen.ieee ~doc_count:(if !quick then 40 else 120) ~seed:88 () in
  let docs = List.of_seq (coll.docs ()) in
  let q = Queries.find "270" in
  let k = 10 in
  let dir = Filename.temp_file "trex_bench_telem" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Shard.close (Shard.create ~dir ~shards:3 ~alias:coll.alias docs);
  let sup = Supervisor.create dir in
  if not (Supervisor.await_healthy sup) then
    failwith "telemetry: workers never became healthy";
  Fun.protect ~finally:(fun () -> Supervisor.close sup) @@ fun () ->
  let timed ~trace ~journal =
    Trex.Obs.Span.set_enabled trace;
    Trex.Obs.Journal.set_enabled journal;
    Fun.protect
      ~finally:(fun () ->
        Trex.Obs.Span.set_enabled false;
        Trex.Obs.Journal.set_enabled false;
        Trex.Obs.Span.reset ())
      (fun () -> robust_time (fun () -> ignore (Supervisor.query sup ~k q.nexi)))
  in
  let t_off = timed ~trace:false ~journal:false in
  let t_trace = timed ~trace:true ~journal:false in
  let t_full = timed ~trace:true ~journal:true in
  let pct t = (t /. t_off -. 1.0) *. 100.0 in
  Printf.printf "%-16s | %10s %10s\n" "mode" "ms" "overhead";
  Printf.printf "%-16s | %10.2f %10s\n" "off" (t_off *. 1e3) "-";
  Printf.printf "%-16s | %10.2f %9.1f%%\n" "trace" (t_trace *. 1e3) (pct t_trace);
  Printf.printf "%-16s | %10.2f %9.1f%%\n" "trace+journal" (t_full *. 1e3)
    (pct t_full);
  Bench_out.record ~section:"telemetry" ~query:q.id ~strategy:"off" ~k
    ~ms:(t_off *. 1e3) [ ("shards", 3) ];
  Bench_out.record ~section:"telemetry" ~query:q.id ~strategy:"trace" ~k
    ~ms:(t_trace *. 1e3) [ ("shards", 3) ];
  Bench_out.record ~section:"telemetry" ~query:q.id ~strategy:"trace+journal"
    ~k ~ms:(t_full *. 1e3) [ ("shards", 3) ];
  Bench_out.flush ~quick:!quick "telemetry"

(* ---- section: serve ---- *)

(* The network front door: what the framed TCP transport and admission
   control add on top of a direct query (closed-loop sustained rate,
   p50/p99), whether shedding holds the "every request terminates as
   answer or typed Shed" contract once offered load is pushed to 2x
   the measured capacity against a short queue, and what moving a
   supervised worker from a socketpair to a loopback-TCP listener
   costs per scatter. *)
let section_serve () =
  header "SERVE: front-door overhead, overload shedding, worker transport";
  let module Serve = Trex_serve.Serve in
  let module Wire = Trex_shard.Wire in
  let coll = Gen.ieee ~doc_count:(if !quick then 30 else 80) ~seed:88 () in
  let docs = List.of_seq (coll.docs ()) in
  let q = Queries.find "270" in
  let k = 10 in
  let dir = Filename.temp_file "trex_bench_serve" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let build_env = Trex.Env.on_disk dir in
  ignore (Trex.build ~env:build_env ~alias:coll.alias (List.to_seq docs));
  Trex.Env.close build_env;
  let answer_sig answers =
    List.map
      (fun (e : Trex.Answer.entry) ->
        ( e.Trex.Answer.element.Trex.Types.docid,
          e.Trex.Answer.element.Trex.Types.endpos,
          e.Trex.Answer.score ))
      answers
  in
  (* Direct baseline: same on-disk env, no transport, no queue. *)
  let t_direct, direct_sig =
    let env = Trex.Env.on_disk dir in
    let engine = Trex.attach ~env () in
    Fun.protect ~finally:(fun () -> Trex.Env.close env) @@ fun () ->
    let t = robust_time (fun () -> ignore (Trex.query engine ~k q.nexi)) in
    let o = Trex.query engine ~k q.nexi in
    (t, answer_sig (Trex.Answer.top_k o.Trex.strategy.Strategy.answers k))
  in
  let fork_server ?(policy = Serve.default_policy) dir =
    let listen = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt listen Unix.SO_REUSEADDR true;
    Unix.bind listen (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
    Unix.listen listen 64;
    let port =
      match Unix.getsockname listen with
      | Unix.ADDR_INET (_, p) -> p
      | _ -> assert false
    in
    flush stdout;
    flush stderr;
    match Unix.fork () with
    | 0 ->
        let code =
          try Serve.run ~policy ~listen_fd:listen ~dir ~addr:"-" ()
          with _ -> 9
        in
        Unix._exit code
    | pid ->
        Unix.close listen;
        (pid, Printf.sprintf "127.0.0.1:%d" port)
  in
  let with_server ?policy dir f =
    let pid, addr = fork_server ?policy dir in
    Fun.protect
      ~finally:(fun () ->
        (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
        try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
      (fun () -> f addr)
  in
  let cq =
    {
      Wire.c_nexi = q.nexi;
      c_k = k;
      c_method = None;
      c_strict = false;
      c_deadline_ms = Some 10_000.0;
      c_page_budget = None;
    }
  in
  (* Closed loop on one connection: sustained rate and percentiles. *)
  let n_seq = if !quick then 40 else 150 in
  let lat =
    with_server dir @@ fun addr ->
    let c = Serve.Client.connect addr in
    Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
    (match Serve.Client.request c cq with
    | Serve.Client.Answer a ->
        if answer_sig a.Wire.ca_answers <> direct_sig then
          failwith "serve: front-door answers differ from the direct query"
    | _ -> failwith "serve: warmup request did not answer");
    Array.init n_seq (fun _ ->
        let t0 = Trex_util.Stopclock.now () in
        match Serve.Client.request c cq with
        | Serve.Client.Answer _ -> Trex_util.Stopclock.now () -. t0
        | _ -> failwith "serve: unloaded request was shed")
  in
  Array.sort compare lat;
  let mean = Array.fold_left ( +. ) 0.0 lat /. float_of_int n_seq in
  let pct p =
    lat.(min (n_seq - 1) (int_of_float (p *. float_of_int (n_seq - 1) +. 0.5)))
  in
  let p50 = pct 0.50 and p99 = pct 0.99 in
  let qps = 1.0 /. mean in
  Bench_out.record ~section:"serve" ~query:q.id ~strategy:"direct" ~k
    ~ms:(t_direct *. 1e3) [];
  Bench_out.record ~section:"serve" ~query:q.id ~strategy:"sequential" ~k
    ~ms:(mean *. 1e3)
    [
      ("qps", int_of_float qps);
      ("p50_us", int_of_float (p50 *. 1e6));
      ("p99_us", int_of_float (p99 *. 1e6));
    ];
  Printf.printf "%-18s | %10.3f ms\n" "direct (no net)" (t_direct *. 1e3);
  Printf.printf
    "%-18s | %10.3f ms  p50 %.3f  p99 %.3f  (%.0f qps sustained)\n"
    "front door" (mean *. 1e3) (p50 *. 1e3) (p99 *. 1e3) qps;
  (* Offered load at 2x the measured capacity against a short queue:
     every request must still terminate as exactly one of answer or
     typed Shed — overload makes the server fast and honest. *)
  let offered_qps = 2.0 *. qps in
  let n_over =
    max 24 (int_of_float (offered_qps *. if !quick then 1.0 else 2.0))
  in
  let n_conns = 4 in
  let answered = ref 0 and shed = ref 0 in
  let t_over =
    with_server ~policy:{ Serve.default_policy with queue_limit = 4 } dir
    @@ fun addr ->
    let conns = Array.init n_conns (fun _ -> Serve.Client.connect addr) in
    Fun.protect ~finally:(fun () -> Array.iter Serve.Client.close conns)
    @@ fun () ->
    let interval = 1.0 /. offered_qps in
    let t0 = Trex_util.Stopclock.now () in
    for i = 0 to n_over - 1 do
      Serve.Client.send conns.(i mod n_conns) (Wire.Client_query cq);
      let d = t0 +. (float_of_int (i + 1) *. interval) -. Trex_util.Stopclock.now () in
      if d > 0.0 then Unix.sleepf d
    done;
    Array.iteri
      (fun ci c ->
        for _ = 1 to (n_over - ci + n_conns - 1) / n_conns do
          match Serve.Client.collect_terminal ~timeout_s:60.0 c with
          | Serve.Client.Answer _ -> incr answered
          | Serve.Client.Shed _ -> incr shed
          | Serve.Client.Draining ->
              failwith "serve: server drained mid-overload"
        done)
      conns;
    Trex_util.Stopclock.now () -. t0
  in
  if !answered + !shed <> n_over then
    failwith "serve: a request terminated as neither answer nor Shed";
  let shed_pct = 100.0 *. float_of_int !shed /. float_of_int n_over in
  Bench_out.record ~section:"serve" ~query:q.id ~strategy:"overload-2x" ~k
    ~ms:(t_over *. 1e3)
    [
      ("offered_qps", int_of_float offered_qps);
      ("answered", !answered);
      ("shed", !shed);
      ("shed_pct", int_of_float shed_pct);
    ];
  Printf.printf
    "%-18s | offered %.0f qps: %d answered, %d shed (%.0f%%), all terminal\n"
    "overload 2x" offered_qps !answered !shed shed_pct;
  (* Worker transport: the same 2-shard supervised scatter with
     socketpair children vs loopback-TCP listeners. *)
  let sdir = Filename.temp_file "trex_bench_serve_sh" "" in
  Sys.remove sdir;
  Unix.mkdir sdir 0o755;
  Shard.close (Shard.create ~dir:sdir ~shards:2 ~alias:coll.alias docs);
  let timed_scatter ?remote () =
    let sup = Supervisor.create ?remote sdir in
    Fun.protect ~finally:(fun () -> Supervisor.close sup) @@ fun () ->
    if not (Supervisor.await_healthy sup) then
      failwith "serve: workers never became healthy";
    let r = Supervisor.query sup ~k q.nexi in
    if r.Shard.degraded_shards <> [] then
      failwith "serve: healthy scatter came back degraded";
    robust_time (fun () -> ignore (Supervisor.query sup ~k q.nexi))
  in
  let t_pair = timed_scatter () in
  let spawn_listen_worker ~dir ~shard =
    let r, w = Unix.pipe () in
    flush stdout;
    flush stderr;
    match Unix.fork () with
    | 0 ->
        Unix.close r;
        Unix.dup2 w Unix.stderr;
        if w <> Unix.stderr then Unix.close w;
        let prog = Sys.executable_name in
        let argv =
          [| prog; "shard-worker"; "--dir"; dir; "--shard"; shard;
             "--listen"; "127.0.0.1:0" |]
        in
        (try Unix.execv prog argv with _ -> ());
        exit 127
    | pid ->
        Unix.close w;
        let buf = Buffer.create 64 in
        let chunk = Bytes.create 256 in
        let rec find () =
          let s = Buffer.contents buf in
          match String.index_opt s '\n' with
          | Some i ->
              let line = String.sub s 0 i in
              Buffer.clear buf;
              Buffer.add_string buf
                (String.sub s (i + 1) (String.length s - i - 1));
              if String.length line > 10 && String.sub line 0 10 = "LISTENING "
              then String.sub line 10 (String.length line - 10)
              else find ()
          | None -> (
              match Unix.read r chunk 0 (Bytes.length chunk) with
              | 0 -> failwith "serve: listen worker died before announcing"
              | n ->
                  Buffer.add_subbytes buf chunk 0 n;
                  find ())
        in
        let addr = find () in
        (pid, r, addr)
  in
  let workers =
    List.map
      (fun (i : Shard.shard_info) ->
        (i.Shard.name, spawn_listen_worker ~dir:sdir ~shard:i.Shard.name))
      (Shard.load_map sdir)
  in
  let t_tcp =
    Fun.protect
      ~finally:(fun () ->
        List.iter
          (fun (_, (pid, r, _)) ->
            (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
            (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
            try Unix.close r with Unix.Unix_error _ -> ())
          workers)
      (fun () ->
        timed_scatter
          ~remote:(List.map (fun (n, (_, _, a)) -> (n, a)) workers)
          ())
  in
  Bench_out.record ~section:"serve" ~query:q.id ~strategy:"worker-socketpair"
    ~k ~ms:(t_pair *. 1e3) [ ("shards", 2) ];
  Bench_out.record ~section:"serve" ~query:q.id ~strategy:"worker-tcp" ~k
    ~ms:(t_tcp *. 1e3) [ ("shards", 2) ];
  Printf.printf "%-18s | %10.3f ms per scatter (2 shards)\n"
    "worker socketpair" (t_pair *. 1e3);
  Printf.printf "%-18s | %10.3f ms per scatter (2 shards, loopback TCP)\n"
    "worker tcp" (t_tcp *. 1e3);
  Bench_out.flush ~quick:!quick "serve"

(* ---- section: effectiveness ---- *)

(* The generator records which topics each document was written around;
   treating "document mentions the query's topic" as the relevance
   judgment gives synthetic qrels, so retrieval effectiveness — the
   other half of the paper's opening challenge — can be scored with
   standard metrics. *)
let query_topic =
  [
    ("202", "semantic-web"); ("203", "security"); ("233", "audio");
    ("260", "verification"); ("270", "ir"); ("290", "evolutionary");
    ("292", "art");
  ]

let section_effectiveness () =
  header "EFFECTIVENESS: P@10 / MAP / nDCG@10 against topic ground truth";
  let module Qrels = Trex_relevance.Qrels in
  let module Metrics = Trex_relevance.Metrics in
  let qrels_for cid topic =
    let coll = coll_for cid in
    let rec build t i =
      if i >= coll.doc_count then t
      else
        let t =
          if List.mem topic (coll.topics i) then
            Qrels.add t ~query:topic ~docid:i ~grade:1
          else t
        in
        build t (i + 1)
    in
    build Qrels.empty 0
  in
  let ranking_of answers =
    List.map (fun (e : Trex.Answer.entry) -> e.element.Trex.Types.docid) answers
  in
  Printf.printf "%-5s %-13s %5s | %7s %7s %8s | %7s\n" "query" "topic" "#rel" "P@10"
    "MAP" "nDCG@10" "random";
  List.iter
    (fun (q : Queries.t) ->
      let topic = List.assoc q.id query_topic in
      let engine = engine_for q.collection in
      let qrels = qrels_for q.collection topic in
      let o = Trex.query engine ~k:100000 ~method_:Strategy.Era_method q.nexi in
      let ranking = ranking_of o.Trex.strategy.Strategy.answers in
      let p10 = Metrics.precision_at qrels ~query:topic ~k:10 ranking in
      let map = Metrics.average_precision qrels ~query:topic ranking in
      let ndcg = Metrics.ndcg_at qrels ~query:topic ~k:10 ranking in
      (* Baseline: expected P@10 of a random ranking = prevalence. *)
      let coll = coll_for q.collection in
      let prevalence =
        float_of_int (Qrels.relevant_count qrels ~query:topic)
        /. float_of_int coll.doc_count
      in
      Printf.printf "%-5s %-13s %5d | %7.3f %7.3f %8.3f | %7.3f\n" q.id topic
        (Qrels.relevant_count qrels ~query:topic)
        p10 map ndcg prevalence)
    Queries.all;
  (* Scorer ablation on effectiveness. *)
  let coll = coll_for Queries.Ieee in
  let env = Trex.Env.in_memory () in
  let tfidf = Trex.build ~env ~alias:coll.alias ~scoring:Trex.Scorer.Tf_idf (coll.docs ()) in
  Printf.printf "\nscorer comparison (IEEE queries, mean over queries):\n";
  List.iter
    (fun (name, engine) ->
      let scores =
        List.map
          (fun (q : Queries.t) ->
            let topic = List.assoc q.id query_topic in
            let qrels = qrels_for Queries.Ieee topic in
            let o = Trex.query engine ~k:100000 ~method_:Strategy.Era_method q.nexi in
            Metrics.average_precision qrels ~query:topic
              (ranking_of o.Trex.strategy.Strategy.answers))
          (Queries.for_collection Queries.Ieee)
      in
      Printf.printf "  %-8s MAP = %.3f\n" name (Metrics.mean (fun x -> x) scores))
    [ ("BM25", engine_for Queries.Ieee); ("TF-IDF", tfidf) ]

(* ---- section: bechamel ---- *)

let section_bechamel () =
  header "BECHAMEL: one Test.make per table/figure family";
  materialize_all ();
  let open Bechamel in
  let of_query id m k =
    let q = Queries.find id in
    let engine, sids, terms = translated q in
    Staged.stage (fun () ->
        ignore
          (Strategy.evaluate (Trex.index engine) ~scoring:(Trex.scoring engine) ~sids
             ~terms ~k m))
  in
  let tests =
    [
      (* sizes: index-build throughput on a small slice *)
      Test.make ~name:"sizes/index_build_20docs"
        (Staged.stage (fun () ->
             let coll = Gen.ieee ~doc_count:20 ~seed:99 () in
             let env = Trex.Env.in_memory () in
             ignore (Trex.build ~env ~alias:coll.alias (coll.docs ()))));
      (* table1: the translation phase *)
      Test.make ~name:"table1/translate_all_queries"
        (Staged.stage (fun () ->
             List.iter
               (fun (q : Queries.t) ->
                 let engine = engine_for q.collection in
                 ignore (Trex.translate engine (Trex.parse engine q.nexi)))
               Queries.all));
      (* fig4: Q202-shape (Merge << TA ~ ERA) *)
      Test.make ~name:"fig4/q202_merge" (of_query "202" Strategy.Merge_method max_int);
      Test.make ~name:"fig4/q202_ta_k10" (of_query "202" Strategy.Ta_method 10);
      (* fig5: Q270-shape *)
      Test.make ~name:"fig5/q270_merge" (of_query "270" Strategy.Merge_method max_int);
      Test.make ~name:"fig5/q270_ta_k10" (of_query "270" Strategy.Ta_method 10);
      (* fig6: Q233-shape (TA ~ Merge << ERA) *)
      Test.make ~name:"fig6/q233_ta_k10" (of_query "233" Strategy.Ta_method 10);
      Test.make ~name:"fig6/q292_merge" (of_query "292" Strategy.Merge_method max_int);
      (* selfman: the greedy solver on a synthetic 12-query instance *)
      Test.make ~name:"selfman/greedy_12_queries"
        (Staged.stage (fun () ->
             let profiles =
               List.init 12 (fun i ->
                   Trex.Cost.make
                     ~id:(string_of_int i)
                     ~frequency:(1.0 /. 12.0)
                     ~time_era:(10.0 +. float_of_int i)
                     ~time_merge:1.0 ~time_ta:2.0
                     ~rpl_lists:[ ("t" ^ string_of_int i, i, 100 + i) ]
                     ~erpl_lists:[ ("t" ^ string_of_int i, i, 150 + i) ])
             in
             ignore (Trex.Advisor.greedy ~budget:1000 profiles)));
    ]
  in
  let benchmark test =
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~kde:(Some 10) () in
    Benchmark.all cfg instances test
  in
  let analyze results =
    let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
    Analyze.all ols Toolkit.Instance.monotonic_clock results
  in
  List.iter
    (fun test ->
      let results = analyze (benchmark test) in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> Printf.printf "  %-34s %14.2f ns/run\n%!" name est
          | Some _ | None -> Printf.printf "  %-34s (no estimate)\n%!" name)
        results)
    tests

(* ---- main ---- *)

let () =
  Printf.printf "TReX benchmark harness%s\n" (if !quick then " (quick mode)" else "");
  ignore (Lazy.force engines);
  if want "sizes" then section_sizes ();
  if want "table1" then section_table1 ();
  if want "fig4" || want "fig5" || want "fig6" then materialize_all ();
  if want "fig4" then
    section_figure ~section:"fig4" "FIGURE 4" [ "202"; "203" ]
      "202: Merge<<TA~ERA, ITA<<TA; 203: TA<<ERA, small-k TA~Merge";
  if want "fig5" then
    section_figure ~section:"fig5" "FIGURE 5" [ "260"; "270" ]
      "260: TA best only tiny k; 270: k drastically affects TA";
  if want "fig6" then
    section_figure ~section:"fig6" "FIGURE 6" [ "233"; "290"; "292" ]
      "233/292: TA & Merge << ERA; 290: Merge usually wins";
  if want "selfman" then section_selfman ();
  if want "ablation" then section_ablation ();
  if want "layout" then section_layout ();
  if want "effectiveness" then section_effectiveness ();
  if want "io" then section_io ();
  if want "compression" then section_compression ();
  if want "shard" then section_shard ();
  if want "shard_proc" then section_shard_proc ();
  if want "telemetry" then section_telemetry ();
  if want "serve" then section_serve ();
  if want "bechamel" then section_bechamel ();
  Printf.printf "\ndone.\n"
