(* Tests for trex_xpath: parser, evaluator, and the oracle property that
   summary-based translation over-approximates true XPath semantics. *)

module Dom = Trex_xml.Dom
module Ast = Trex_xpath.Xpath_ast
module Parser = Trex_xpath.Xpath_parser
module Eval = Trex_xpath.Xpath_eval
module Summary = Trex_summary.Summary
module Pattern = Trex_summary.Pattern

let check = Alcotest.check

let doc =
  Dom.parse
    {|<library kind="public">
  <shelf id="s1">
    <book year="2001"><title>Logic</title><author>Ann</author></book>
    <book year="1999"><title>Sets</title><author>Bob</author><author>Cid</author></book>
  </shelf>
  <shelf id="s2">
    <book year="2010"><title>Trees</title><author>Ann</author></book>
    <magazine><title>Monthly</title></magazine>
  </shelf>
  <newspaper/>
</library>|}

let idx = Eval.of_doc doc

let tags path = List.map (fun (e : Dom.element) -> e.tag) (Eval.run idx path)
let titles path = Eval.select_values idx (Parser.parse path)
let count path = Eval.count idx (Parser.parse path)

(* ---- parser ---- *)

let test_parse_roundtrippable () =
  List.iter
    (fun src ->
      let p = Parser.parse src in
      (* Re-parse of the canonical form gives the same AST. *)
      let canonical = Ast.path_to_string p in
      Alcotest.(check bool) src true (Parser.parse canonical = p))
    [
      "/library/shelf/book";
      "//book/title";
      "//book[@year > 2000]";
      "//shelf[book]/@id";
      "//book[author = 'Ann']/title";
      "/library//book[position() = 2]";
      "//book[count(author) > 1 and @year < 2000]";
      "//*[not(title)]";
      "//shelf/book/ancestor::library";
      "//title/parent::book";
      "//book/following-sibling::book";
      "//text()";
      "/";
    ]

let test_parse_errors () =
  List.iter
    (fun src ->
      Alcotest.(check bool) src true
        (try
           ignore (Parser.parse src);
           false
         with Parser.Syntax_error _ -> true))
    [ ""; "book["; "//book[]"; "//book[@]"; "//book]"; "//book[bogus::x]"; "//book[position() !]" ]

(* ---- evaluation ---- *)

let test_child_and_descendant () =
  check (Alcotest.list Alcotest.string) "absolute child chain"
    [ "book"; "book"; "book" ]
    (tags "/library/shelf/book");
  check Alcotest.int "descendant titles" 4 (count "//title");
  check (Alcotest.list Alcotest.string) "root test" [ "library" ] (tags "/library");
  check (Alcotest.list Alcotest.string) "wrong root" [] (tags "/shelf")

let test_wildcard_and_node () =
  check Alcotest.int "shelf children" 4 (count "/library/shelf/*");
  (* node() also counts text nodes. *)
  Alcotest.(check bool) "node() >= elements" true
    (count "//book/node()" >= count "//book/*")

let test_attributes () =
  check (Alcotest.list Alcotest.string) "attribute values" [ "s1"; "s2" ]
    (titles "//shelf/@id");
  check Alcotest.int "attr wildcard" 6 (count "//@*");
  check (Alcotest.list Alcotest.string) "filter by attribute"
    [ "Logic"; "Trees" ]
    (titles "//book[@year > 2000]/title")

let test_positional_predicates () =
  check (Alcotest.list Alcotest.string) "second book per shelf"
    [ "Sets" ]
    (titles "//shelf/book[2]/title");
  check (Alcotest.list Alcotest.string) "last()"
    [ "Sets"; "Trees" ]
    (titles "//shelf/book[position() = last()]/title")

let test_value_comparisons () =
  check (Alcotest.list Alcotest.string) "author equality"
    [ "Logic"; "Trees" ]
    (titles "//book[author = 'Ann']/title");
  check (Alcotest.list Alcotest.string) "count() and <"
    [ "Sets" ]
    (titles "//book[count(author) > 1 and @year < 2000]/title");
  check (Alcotest.list Alcotest.string) "contains"
    [ "Monthly" ]
    (titles "//*[contains(title, 'onth')]/title")

let test_boolean_connectives () =
  check Alcotest.int "or" 2 (count "//shelf/*[self::magazine or @year = 2010]");
  (* Elements without a title child: library, 2 shelves, 4 titles,
     4 authors, newspaper = 12. *)
  check Alcotest.int "not()" 12 (count "//*[not(title)]")

let test_reverse_axes () =
  check (Alcotest.list Alcotest.string) "parent" [ "book"; "book"; "book"; "magazine" ]
    (tags "//title/parent::*");
  check Alcotest.int "ancestor" 1 (count "//author/ancestor::library");
  check (Alcotest.list Alcotest.string) "following-sibling" [ "Sets" ]
    (titles "//book[title = 'Logic']/following-sibling::book/title");
  check (Alcotest.list Alcotest.string) "preceding-sibling" [ "Logic" ]
    (titles "//book[title = 'Sets']/preceding-sibling::book/title")

let test_text_nodes () =
  check (Alcotest.list Alcotest.string) "text()" [ "Logic" ]
    (Eval.select_values idx (Parser.parse "//book[1]/title/text()"))

let test_document_order_and_dedup () =
  (* A path that could produce duplicates: every author's ancestor
     shelf. *)
  check Alcotest.int "deduped" 2 (count "//author/ancestor::shelf");
  check (Alcotest.list Alcotest.string) "document order"
    [ "Logic"; "Sets"; "Trees"; "Monthly" ]
    (titles "//title")

(* ---- oracle: summary translation over-approximates XPath ---- *)

let prop_summary_translation_covers_xpath =
  QCheck.Test.make ~name:"summary sids cover true XPath result" ~count:40 QCheck.int
    (fun seed ->
      let coll = Trex_corpus.Gen.ieee ~doc_count:3 ~seed:(abs seed mod 1000) () in
      let docs = List.of_seq (coll.docs ()) in
      let summary = Summary.create Summary.Incoming in
      let parsed = List.map (fun (_, xml) -> Dom.parse xml) docs in
      List.iter (fun d -> ignore (Summary.observe_document summary d)) parsed;
      List.for_all
        (fun pattern_src ->
          let pattern = Pattern.parse pattern_src in
          let sids = Summary.match_pattern summary pattern in
          (* Every element the XPath engine selects must lie in one of
             the translated extents. *)
          List.for_all
            (fun d ->
              let idx = Eval.of_doc d in
              let selected = Eval.run idx pattern_src in
              let ok (el : Dom.element) =
                let path = ref None in
                Dom.iter_elements { Dom.root = d.Dom.root; source_length = 0 }
                  (fun p e -> if e == el then path := Some p);
                match !path with
                | None -> false
                | Some p -> (
                    match Summary.sid_of_path summary p with
                    | Some sid -> List.mem sid sids
                    | None -> false)
              in
              List.for_all ok selected)
            parsed)
        [ "//sec"; "//article//p"; "/books/journal/article"; "//bdy//*"; "//fig/fgc" ])

let qtest = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "trex_xpath"
    [
      ( "parser",
        [
          Alcotest.test_case "roundtrip" `Quick test_parse_roundtrippable;
          Alcotest.test_case "errors" `Quick test_parse_errors;
        ] );
      ( "eval",
        [
          Alcotest.test_case "child and descendant" `Quick test_child_and_descendant;
          Alcotest.test_case "wildcard and node()" `Quick test_wildcard_and_node;
          Alcotest.test_case "attributes" `Quick test_attributes;
          Alcotest.test_case "positional predicates" `Quick test_positional_predicates;
          Alcotest.test_case "value comparisons" `Quick test_value_comparisons;
          Alcotest.test_case "boolean connectives" `Quick test_boolean_connectives;
          Alcotest.test_case "reverse axes" `Quick test_reverse_axes;
          Alcotest.test_case "text nodes" `Quick test_text_nodes;
          Alcotest.test_case "order and dedup" `Quick test_document_order_and_dedup;
        ] );
      ("oracle", [ qtest prop_summary_translation_covers_xpath ]);
    ]
