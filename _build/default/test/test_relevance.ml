(* Tests for trex_relevance: qrels and ranked-retrieval metrics. *)

module Qrels = Trex_relevance.Qrels
module Metrics = Trex_relevance.Metrics
module Prng = Trex_util.Prng

let check = Alcotest.check
let flo = Alcotest.float 1e-9

(* One query, docs 1..4 relevant (grades 1..3), others not. *)
let qrels =
  Qrels.of_list
    [ ("q", 1, 3); ("q", 2, 1); ("q", 3, 2); ("q", 4, 1); ("q", 9, 0) ]

let test_qrels_basics () =
  check Alcotest.int "grade" 3 (Qrels.grade qrels ~query:"q" ~docid:1);
  check Alcotest.int "unjudged" 0 (Qrels.grade qrels ~query:"q" ~docid:42);
  check Alcotest.int "grade-0 judged not relevant" 0 (Qrels.grade qrels ~query:"q" ~docid:9);
  Alcotest.(check bool) "relevant" true (Qrels.is_relevant qrels ~query:"q" ~docid:2);
  Alcotest.(check bool) "not relevant" false (Qrels.is_relevant qrels ~query:"q" ~docid:9);
  check Alcotest.int "relevant count" 4 (Qrels.relevant_count qrels ~query:"q");
  check (Alcotest.list Alcotest.int) "grades descending" [ 3; 2; 1; 1 ]
    (Qrels.grades qrels ~query:"q");
  check Alcotest.int "unknown query" 0 (Qrels.relevant_count qrels ~query:"zz")

let test_qrels_replace_and_invalid () =
  let q2 = Qrels.add qrels ~query:"q" ~docid:1 ~grade:1 in
  check Alcotest.int "replaced" 1 (Qrels.grade q2 ~query:"q" ~docid:1);
  Alcotest.(check bool) "negative grade" true
    (try
       ignore (Qrels.add qrels ~query:"q" ~docid:5 ~grade:(-1));
       false
     with Invalid_argument _ -> true)

let test_precision_at () =
  (* ranking: rel, not, rel, not, not *)
  let ranking = [ 1; 100; 2; 101; 102 ] in
  check flo "p@1" 1.0 (Metrics.precision_at qrels ~query:"q" ~k:1 ranking);
  check flo "p@2" 0.5 (Metrics.precision_at qrels ~query:"q" ~k:2 ranking);
  check flo "p@5" 0.4 (Metrics.precision_at qrels ~query:"q" ~k:5 ranking);
  (* Short lists count missing ranks as misses. *)
  check flo "p@10 short list" 0.2 (Metrics.precision_at qrels ~query:"q" ~k:10 ranking)

let test_recall_at () =
  let ranking = [ 1; 100; 2; 101 ] in
  check flo "r@1" 0.25 (Metrics.recall_at qrels ~query:"q" ~k:1 ranking);
  check flo "r@4" 0.5 (Metrics.recall_at qrels ~query:"q" ~k:4 ranking);
  check flo "no relevant docs" 0.0 (Metrics.recall_at qrels ~query:"none" ~k:5 ranking)

let test_r_precision () =
  (* R = 4; among the first four ranks, two are relevant. *)
  check flo "r-prec" 0.5 (Metrics.r_precision qrels ~query:"q" [ 1; 100; 2; 101; 3 ])

let test_average_precision () =
  (* Perfect ranking of all four relevant docs: AP = 1. *)
  check flo "perfect" 1.0 (Metrics.average_precision qrels ~query:"q" [ 1; 2; 3; 4 ]);
  (* rel at ranks 1 and 3: (1/1 + 2/3) / 4. *)
  check flo "partial" ((1.0 +. (2.0 /. 3.0)) /. 4.0)
    (Metrics.average_precision qrels ~query:"q" [ 1; 100; 2 ]);
  check flo "nothing found" 0.0 (Metrics.average_precision qrels ~query:"q" [ 100; 101 ])

let test_ndcg () =
  (* Ideal order: grades 3,2,1,1. *)
  check flo "perfect ndcg" 1.0 (Metrics.ndcg_at qrels ~query:"q" ~k:4 [ 1; 3; 2; 4 ]);
  Alcotest.(check bool) "worse order scores lower" true
    (Metrics.ndcg_at qrels ~query:"q" ~k:4 [ 4; 2; 3; 1 ]
    < Metrics.ndcg_at qrels ~query:"q" ~k:4 [ 1; 3; 2; 4 ]);
  check flo "unjudged query" 0.0 (Metrics.ndcg_at qrels ~query:"none" ~k:4 [ 1; 2 ])

let test_reciprocal_rank () =
  check flo "first" 1.0 (Metrics.reciprocal_rank qrels ~query:"q" [ 1; 100 ]);
  check flo "third" (1.0 /. 3.0) (Metrics.reciprocal_rank qrels ~query:"q" [ 100; 101; 2 ]);
  check flo "never" 0.0 (Metrics.reciprocal_rank qrels ~query:"q" [ 100; 101 ])

let test_duplicates_ignored () =
  (* A duplicate of a relevant doc must not double-count. *)
  check flo "ap dedup" 1.0 (Metrics.average_precision qrels ~query:"q" [ 1; 1; 2; 3; 4 ])

let test_mean () =
  check flo "mean" 0.5 (Metrics.mean (fun x -> x) [ 0.0; 1.0 ]);
  check flo "empty" 0.0 (Metrics.mean (fun x -> x) [])

(* Properties over random rankings. *)
let random_ranking seed =
  let rng = Prng.create seed in
  List.init (Prng.int rng 20) (fun _ -> Prng.int rng 30)

let prop_metrics_bounded =
  QCheck.Test.make ~name:"metrics stay in [0,1]" ~count:300 QCheck.int (fun seed ->
      let ranking = random_ranking seed in
      let in01 v = v >= 0.0 && v <= 1.0 +. 1e-9 in
      in01 (Metrics.precision_at qrels ~query:"q" ~k:5 ranking)
      && in01 (Metrics.recall_at qrels ~query:"q" ~k:5 ranking)
      && in01 (Metrics.average_precision qrels ~query:"q" ranking)
      && in01 (Metrics.ndcg_at qrels ~query:"q" ~k:5 ranking)
      && in01 (Metrics.reciprocal_rank qrels ~query:"q" ranking)
      && in01 (Metrics.r_precision qrels ~query:"q" ranking))

let prop_perfect_prefix_maximizes_ndcg =
  QCheck.Test.make ~name:"ideal ranking maximizes ndcg" ~count:200 QCheck.int
    (fun seed ->
      let ranking = random_ranking seed in
      Metrics.ndcg_at qrels ~query:"q" ~k:4 ranking
      <= Metrics.ndcg_at qrels ~query:"q" ~k:4 [ 1; 3; 2; 4 ] +. 1e-9)

let qtest = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "trex_relevance"
    [
      ( "qrels",
        [
          Alcotest.test_case "basics" `Quick test_qrels_basics;
          Alcotest.test_case "replace and invalid" `Quick test_qrels_replace_and_invalid;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "precision@k" `Quick test_precision_at;
          Alcotest.test_case "recall@k" `Quick test_recall_at;
          Alcotest.test_case "r-precision" `Quick test_r_precision;
          Alcotest.test_case "average precision" `Quick test_average_precision;
          Alcotest.test_case "ndcg" `Quick test_ndcg;
          Alcotest.test_case "reciprocal rank" `Quick test_reciprocal_rank;
          Alcotest.test_case "duplicates ignored" `Quick test_duplicates_ignored;
          Alcotest.test_case "mean" `Quick test_mean;
          qtest prop_metrics_bounded;
          qtest prop_perfect_prefix_maximizes_ndcg;
        ] );
    ]
