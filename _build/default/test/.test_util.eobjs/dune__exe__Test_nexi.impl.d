test/test_nexi.ml: Alcotest List Trex_corpus Trex_nexi Trex_summary Trex_text Trex_xml
