test/test_xpath.ml: Alcotest List QCheck QCheck_alcotest Trex_corpus Trex_summary Trex_xml Trex_xpath
