test/test_storage.ml: Alcotest Array Bytes Char Filename Gen Hashtbl List Printf QCheck QCheck_alcotest Seq String Sys Test Trex_storage Trex_util Unix
