test/test_summary.ml: Alcotest List Option Printf QCheck QCheck_alcotest String Trex_summary Trex_util Trex_xml
