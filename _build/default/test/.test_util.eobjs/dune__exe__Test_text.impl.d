test/test_text.ml: Alcotest Gen List QCheck QCheck_alcotest String Trex_text
