test/test_relevance.mli:
