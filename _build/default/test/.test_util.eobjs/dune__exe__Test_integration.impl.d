test/test_integration.ml: Alcotest Filename Lazy List Printf String Sys Trex Trex_corpus Unix
