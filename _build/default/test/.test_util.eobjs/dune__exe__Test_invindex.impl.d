test/test_invindex.ml: Alcotest Filename List Option Printf Seq String Sys Trex_invindex Trex_storage Trex_summary Trex_text Unix
