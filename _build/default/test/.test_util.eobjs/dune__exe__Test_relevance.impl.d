test/test_relevance.ml: Alcotest List QCheck QCheck_alcotest Trex_relevance Trex_util
