test/test_scoring.ml: Alcotest Float List QCheck QCheck_alcotest Trex_scoring
