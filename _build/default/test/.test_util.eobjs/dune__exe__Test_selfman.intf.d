test/test_selfman.mli:
