test/test_xml.ml: Alcotest Gen List QCheck QCheck_alcotest String Trex_util Trex_xml
