test/test_nexi.mli:
