test/test_util.ml: Alcotest Array Gen Int List Printf QCheck QCheck_alcotest String Trex_util Unix
