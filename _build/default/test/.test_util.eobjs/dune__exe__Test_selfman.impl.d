test/test_selfman.ml: Alcotest Array Float Format List Option Printf QCheck QCheck_alcotest Trex_corpus Trex_invindex Trex_nexi Trex_scoring Trex_selfman Trex_storage Trex_summary Trex_topk Trex_util
