test/test_invindex.mli:
