(* Tests for trex_scoring. *)

module Scorer = Trex_scoring.Scorer

let check = Alcotest.check

let corpus = { Scorer.doc_count = 1000; avg_element_length = 200.0 }

let test_idf_decreasing_in_df () =
  let i1 = Scorer.idf ~doc_count:1000 ~df:1 in
  let i10 = Scorer.idf ~doc_count:1000 ~df:10 in
  let i500 = Scorer.idf ~doc_count:1000 ~df:500 in
  Alcotest.(check bool) "rare > common" true (i1 > i10 && i10 > i500);
  Alcotest.(check bool) "non-negative" true (i500 > 0.0)

let test_idf_edge_cases () =
  Alcotest.(check bool) "df=0 finite" true
    (Float.is_finite (Scorer.idf ~doc_count:100 ~df:0));
  Alcotest.(check bool) "df=N positive" true (Scorer.idf ~doc_count:100 ~df:100 > 0.0)

let test_score_zero_when_tf_zero () =
  List.iter
    (fun config ->
      check (Alcotest.float 0.0) "tf=0" 0.0
        (Scorer.score config ~corpus ~df:10 ~tf:0 ~element_length:100))
    [ Scorer.default; Scorer.Tf_idf ]

let test_score_monotone_in_tf () =
  List.iter
    (fun config ->
      let s tf = Scorer.score config ~corpus ~df:10 ~tf ~element_length:100 in
      Alcotest.(check bool) "1<2" true (s 1 < s 2);
      Alcotest.(check bool) "2<10" true (s 2 < s 10);
      Alcotest.(check bool) "positive" true (s 1 > 0.0))
    [ Scorer.default; Scorer.Tf_idf ]

let test_score_penalizes_length () =
  List.iter
    (fun config ->
      let s len = Scorer.score config ~corpus ~df:10 ~tf:3 ~element_length:len in
      Alcotest.(check bool) "short beats long at equal tf" true (s 50 > s 5000))
    [ Scorer.default; Scorer.Tf_idf ]

let test_score_rewards_rarity () =
  let s df = Scorer.score Scorer.default ~corpus ~df ~tf:3 ~element_length:100 in
  Alcotest.(check bool) "rare term scores higher" true (s 2 > s 500)

let test_bm25_saturates () =
  (* BM25's tf component is bounded by (k1 + 1) * idf. *)
  let s tf = Scorer.score Scorer.default ~corpus ~df:10 ~tf ~element_length:200 in
  let bound = 2.2 *. Scorer.idf ~doc_count:1000 ~df:10 in
  Alcotest.(check bool) "bounded" true (s 1_000_000 <= bound +. 1e-9);
  Alcotest.(check bool) "diminishing returns" true (s 20 -. s 10 < s 10 -. s 5)

let test_combine () =
  check (Alcotest.float 1e-12) "sum" 6.0 (Scorer.combine [ 1.0; 2.0; 3.0 ]);
  check (Alcotest.float 0.0) "empty" 0.0 (Scorer.combine [])

let prop_score_finite_nonneg =
  QCheck.Test.make ~name:"score finite and non-negative" ~count:500
    QCheck.(triple (int_range 0 1000) (int_range 0 100) (int_range 0 100000))
    (fun (df, tf, len) ->
      List.for_all
        (fun config ->
          let s = Scorer.score config ~corpus ~df ~tf ~element_length:len in
          Float.is_finite s && s >= 0.0)
        [ Scorer.default; Scorer.Tf_idf ])

let qtest = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "trex_scoring"
    [
      ( "scorer",
        [
          Alcotest.test_case "idf decreasing" `Quick test_idf_decreasing_in_df;
          Alcotest.test_case "idf edges" `Quick test_idf_edge_cases;
          Alcotest.test_case "zero at tf=0" `Quick test_score_zero_when_tf_zero;
          Alcotest.test_case "monotone in tf" `Quick test_score_monotone_in_tf;
          Alcotest.test_case "length penalty" `Quick test_score_penalizes_length;
          Alcotest.test_case "rarity reward" `Quick test_score_rewards_rarity;
          Alcotest.test_case "bm25 saturation" `Quick test_bm25_saturates;
          Alcotest.test_case "combine" `Quick test_combine;
          qtest prop_score_finite_nonneg;
        ] );
    ]
