(* Tests for trex_nexi: parser, AST helpers, translation. *)

module Ast = Trex_nexi.Ast
module Parser = Trex_nexi.Parser
module Translate = Trex_nexi.Translate
module Pattern = Trex_summary.Pattern
module Summary = Trex_summary.Summary
module Alias = Trex_summary.Alias
module Analyzer = Trex_text.Analyzer
module Dom = Trex_xml.Dom

let check = Alcotest.check

let parse = Parser.parse

(* ---- parsing ---- *)

let test_parse_simple () =
  let q = parse "//sec[about(., code signing verification)]" in
  check Alcotest.int "one step" 1 (List.length q);
  let step = List.hd q in
  check (Alcotest.option Alcotest.string) "test" (Some "sec") step.Ast.test;
  match step.Ast.predicate with
  | Some (Ast.About { rel = []; keywords }) ->
      check
        (Alcotest.list Alcotest.string)
        "keywords"
        [ "code"; "signing"; "verification" ]
        (List.concat_map (fun (k : Ast.keyword) -> k.words) keywords)
  | _ -> Alcotest.fail "expected a single about"

let test_parse_nested_paths () =
  let q = parse "//article[about(., XML)]//sec[about(., query evaluation)]" in
  check Alcotest.int "two steps" 2 (List.length q);
  let abouts = Ast.about_paths q in
  check Alcotest.int "two about paths" 2 (List.length abouts);
  let paths = List.map (fun (p, _) -> Pattern.to_string p) abouts in
  check (Alcotest.list Alcotest.string) "paths" [ "//article"; "//article//sec" ] paths

let test_parse_relative_path_in_about () =
  let q = parse "//article[about(.//bdy, synthesizers) and about(.//bdy, music)]" in
  let abouts = Ast.about_paths q in
  check Alcotest.int "two abouts" 2 (List.length abouts);
  List.iter
    (fun (p, _) ->
      check Alcotest.string "rel path appended" "//article//bdy" (Pattern.to_string p))
    abouts

let test_parse_wildcard () =
  let q = parse "//bdy//*[about(., model checking)]" in
  let step = List.nth q 1 in
  check (Alcotest.option Alcotest.string) "wildcard" None step.Ast.test

let test_parse_polarity () =
  let q = parse "//article//figure[about(., Renaissance painting -French -German)]" in
  match Ast.about_paths q with
  | [ (_, keywords) ] ->
      let pol p = List.filter (fun (k : Ast.keyword) -> k.polarity = p) keywords in
      check Alcotest.int "positives" 2 (List.length (pol Ast.Should));
      check Alcotest.int "negatives" 2 (List.length (pol Ast.Must_not));
      check
        (Alcotest.list Alcotest.string)
        "negative words" [ "French"; "German" ]
        (List.concat_map (fun (k : Ast.keyword) -> k.words) (pol Ast.Must_not))
  | _ -> Alcotest.fail "one about expected"

let test_parse_phrase_and_plus () =
  let q = parse "//p[about(., +\"information retrieval\" ranking)]" in
  match Ast.about_paths q with
  | [ (_, [ k1; k2 ]) ] ->
      check Alcotest.bool "phrase is must" true (k1.Ast.polarity = Ast.Must);
      check
        (Alcotest.list Alcotest.string)
        "phrase words" [ "information"; "retrieval" ] k1.Ast.words;
      check (Alcotest.list Alcotest.string) "plain word" [ "ranking" ] k2.Ast.words
  | _ -> Alcotest.fail "expected phrase + word"

let test_parse_or_predicate () =
  let q = parse "//a[about(., x) or about(., y)]" in
  match (List.hd q).Ast.predicate with
  | Some (Ast.Or (Ast.About _, Ast.About _)) -> ()
  | _ -> Alcotest.fail "expected or"

let test_all_paper_queries_parse () =
  List.iter
    (fun (q : Trex_corpus.Queries.t) ->
      match parse q.nexi with
      | [] -> Alcotest.fail ("query " ^ q.id ^ " parsed to empty")
      | _ -> ())
    Trex_corpus.Queries.all

let test_parse_errors () =
  List.iter
    (fun src ->
      Alcotest.(check bool) src true
        (try
           ignore (parse src);
           false
         with Parser.Syntax_error _ -> true))
    [
      "";
      "article";
      "//";
      "//a[";
      "//a[about(,x)]";
      "//a[about(.)]";
      "//a[about(., )]";
      "//a[about(., x) and]";
      "//a[notabout(., x)]";
      "//a]trailing";
      "//a[about(., \"unterminated)]";
    ]

let test_to_string_roundtrip () =
  List.iter
    (fun src ->
      let q = parse src in
      let q2 = parse (Ast.to_string q) in
      check Alcotest.string src (Ast.to_string q) (Ast.to_string q2))
    [
      "//sec[about(., code signing verification)]";
      "//article[about(., XML)]//sec[about(., query evaluation)]";
      "//article[about(.//bdy, synthesizers) and about(.//bdy, music)]";
      "//bdy//*[about(., model checking state space explosion)]";
      "//article//figure[about(., Renaissance painting -French)]";
    ]

(* ---- translation ---- *)

let ieee_alias = Alias.of_list [ ("ss1", "sec"); ("ss2", "sec") ]

let toy_summary () =
  let s = Summary.create ~alias:ieee_alias Summary.Incoming in
  let doc =
    Dom.parse
      "<books><journal><article><bdy><sec><p>x</p></sec><ss1><p>y</p></ss1><fig>z</fig></bdy></article></journal></books>"
  in
  ignore (Summary.observe_document s doc);
  s

let normalize = Analyzer.normalize Analyzer.default

let test_translate_sids_and_terms () =
  let s = toy_summary () in
  let q = parse "//article//sec[about(., query evaluation retrieval)]" in
  let t = Translate.translate ~summary:s ~normalize q in
  check Alcotest.int "one unit" 1 (List.length t.units);
  let u = List.hd t.units in
  check Alcotest.int "sec extent found" 1 (List.length u.sids);
  check
    (Alcotest.list Alcotest.string)
    "terms normalized" [ "queri"; "evalu"; "retriev" ] u.terms;
  check (Alcotest.list Alcotest.int) "target = unit sids" u.sids t.target_sids

let test_translate_union_and_dedup () =
  let s = toy_summary () in
  let q = parse "//article[about(., retrieval)]//sec[about(., retrieval ranking)]" in
  let t = Translate.translate ~summary:s ~normalize q in
  (* all_terms dedups "retriev" across units. *)
  check
    (Alcotest.list Alcotest.string)
    "terms" [ "retriev"; "rank" ] (Translate.all_terms t);
  (* all_sids unions article + sec extents. *)
  check Alcotest.int "sids" 2 (List.length (Translate.all_sids t))

let test_translate_drops_stopword_keywords () =
  let s = toy_summary () in
  let q = parse "//sec[about(., the of retrieval)]" in
  let t = Translate.translate ~summary:s ~normalize q in
  check
    (Alcotest.list Alcotest.string)
    "stopwords dropped" [ "retriev" ]
    (Translate.all_terms t)

let test_translate_excluded_terms () =
  let s = toy_summary () in
  let q = parse "//sec[about(., painting -french -german)]" in
  let t = Translate.translate ~summary:s ~normalize q in
  let u = List.hd t.units in
  check (Alcotest.list Alcotest.string) "positive" [ "paint" ] u.terms;
  check
    (Alcotest.list Alcotest.string)
    "excluded" [ "french"; "german" ] u.excluded_terms

let test_translate_vague_via_alias () =
  let s = toy_summary () in
  (* ss1 was folded into sec: querying //article//ss1 matches the merged
     extent (the paper's vague interpretation). *)
  let q = parse "//article//ss1[about(., retrieval)]" in
  let t = Translate.translate ~summary:s ~normalize q in
  check Alcotest.int "alias extent" 1 (List.length t.target_sids)

let test_translate_unknown_tag_gives_no_sids () =
  let s = toy_summary () in
  let q = parse "//nosuchtag[about(., retrieval)]" in
  let t = Translate.translate ~summary:s ~normalize q in
  check (Alcotest.list Alcotest.int) "no sids" [] t.target_sids

let () =
  Alcotest.run "trex_nexi"
    [
      ( "parser",
        [
          Alcotest.test_case "simple" `Quick test_parse_simple;
          Alcotest.test_case "nested paths" `Quick test_parse_nested_paths;
          Alcotest.test_case "relative about path" `Quick
            test_parse_relative_path_in_about;
          Alcotest.test_case "wildcard" `Quick test_parse_wildcard;
          Alcotest.test_case "polarity" `Quick test_parse_polarity;
          Alcotest.test_case "phrase and plus" `Quick test_parse_phrase_and_plus;
          Alcotest.test_case "or predicate" `Quick test_parse_or_predicate;
          Alcotest.test_case "paper queries parse" `Quick test_all_paper_queries_parse;
          Alcotest.test_case "syntax errors" `Quick test_parse_errors;
          Alcotest.test_case "to_string roundtrip" `Quick test_to_string_roundtrip;
        ] );
      ( "translate",
        [
          Alcotest.test_case "sids and terms" `Quick test_translate_sids_and_terms;
          Alcotest.test_case "union and dedup" `Quick test_translate_union_and_dedup;
          Alcotest.test_case "stopword keywords dropped" `Quick
            test_translate_drops_stopword_keywords;
          Alcotest.test_case "excluded terms" `Quick test_translate_excluded_terms;
          Alcotest.test_case "vague via alias" `Quick test_translate_vague_via_alias;
          Alcotest.test_case "unknown tag" `Quick test_translate_unknown_tag_gives_no_sids;
        ] );
    ]
