(* End-to-end tests through the Trex façade: build both synthetic
   collections, run the paper's seven queries with every strategy, check
   agreement, persistence, strictness and the structured evaluator. *)

module Queries = Trex_corpus.Queries
module Gen = Trex_corpus.Gen

let check = Alcotest.check

let ieee_engine =
  lazy
    (let coll = Gen.ieee ~doc_count:50 ~seed:11 () in
     (coll, Trex.build ~env:(Trex.Env.in_memory ()) ~alias:coll.alias (coll.docs ())))

let wiki_engine =
  lazy
    (let coll = Gen.wikipedia ~doc_count:80 ~seed:12 () in
     (coll, Trex.build ~env:(Trex.Env.in_memory ()) ~alias:coll.alias (coll.docs ())))

let engine_for = function
  | Queries.Ieee -> snd (Lazy.force ieee_engine)
  | Queries.Wikipedia -> snd (Lazy.force wiki_engine)

let test_paper_queries_translate_and_run () =
  List.iter
    (fun (q : Queries.t) ->
      let engine = engine_for q.collection in
      let o = Trex.query engine ~k:10 ~method_:Trex.Strategy.Era_method q.nexi in
      let sids = Trex.Translate.all_sids o.translation in
      let terms = Trex.Translate.all_terms o.translation in
      Alcotest.(check bool) (q.id ^ " has sids") true (sids <> []);
      Alcotest.(check bool) (q.id ^ " has terms") true (terms <> []);
      Alcotest.(check bool)
        (Printf.sprintf "%s returns answers (%d sids, %d terms)" q.id
           (List.length sids) (List.length terms))
        true
        (o.strategy.answers <> []))
    Queries.all

let test_all_strategies_agree_on_paper_queries () =
  List.iter
    (fun (q : Queries.t) ->
      let engine = engine_for q.collection in
      ignore (Trex.materialize engine q.nexi);
      let answers m = (Trex.query engine ~k:25 ~method_:m q.nexi).strategy.answers in
      let era = answers Trex.Strategy.Era_method in
      let merge = answers Trex.Strategy.Merge_method in
      let ta = answers Trex.Strategy.Ta_method in
      Alcotest.(check bool) (q.id ^ ": merge = era") true
        (Trex.Answer.equal ~eps:1e-9 era merge);
      (* TA returns k answers with the same score sequence. *)
      let era_top = Trex.Answer.top_k era 25 in
      check Alcotest.int (q.id ^ ": ta size") (List.length era_top) (List.length ta);
      List.iter2
        (fun (a : Trex.Answer.entry) (b : Trex.Answer.entry) ->
          check (Alcotest.float 1e-9) (q.id ^ ": ta score") b.score a.score)
        ta era_top)
    Queries.all

let test_query_default_method_uses_available_indexes () =
  let q = Queries.find "270" in
  let engine = engine_for q.collection in
  ignore (Trex.materialize engine q.nexi);
  let o_small = Trex.query engine ~k:1 q.nexi in
  let o_large = Trex.query engine ~k:100000 q.nexi in
  Alcotest.(check bool) "small k avoids ERA" true
    (o_small.strategy.method_used <> Trex.Strategy.Era_method);
  Alcotest.(check bool) "large k uses Merge" true
    (o_large.strategy.method_used = Trex.Strategy.Merge_method)

let test_strict_filters_to_target () =
  let engine = engine_for Queries.Ieee in
  (* Vague: the translation may include support sids (//article); strict
     keeps only target-extent elements. *)
  let nexi = "//article[about(., ontologies)]//sec[about(., ontologies case study)]" in
  let vague = Trex.query engine ~k:1000 ~method_:Trex.Strategy.Era_method nexi in
  let strict =
    Trex.query engine ~k:1000 ~method_:Trex.Strategy.Era_method ~strict:true nexi
  in
  let target = vague.translation.Trex.Translate.target_sids in
  Alcotest.(check bool) "strict subset of vague" true
    (List.length strict.strategy.answers <= List.length vague.strategy.answers);
  List.iter
    (fun (e : Trex.Answer.entry) ->
      Alcotest.(check bool) "strict answers in target extent" true
        (List.mem e.element.Trex.Types.sid target))
    strict.strategy.answers

let test_structured_evaluation () =
  let engine = engine_for Queries.Ieee in
  let nexi = "//article[about(.//bdy, synthesizers) and about(.//bdy, music)]" in
  let o = Trex.query_structured engine ~k:20 nexi in
  (* Structured answers live in the target (article) extent only. *)
  let target = o.translation.Trex.Translate.target_sids in
  Alcotest.(check bool) "has answers" true (o.strategy.answers <> []);
  List.iter
    (fun (e : Trex.Answer.entry) ->
      Alcotest.(check bool) "answer is an article" true
        (List.mem e.element.Trex.Types.sid target))
    o.strategy.answers

let test_structured_exclusion () =
  let engine = engine_for Queries.Wikipedia in
  let with_neg =
    Trex.query_structured engine ~k:100000
      "//article//figure[about(., painting -french)]"
  in
  let without_neg =
    Trex.query_structured engine ~k:100000 "//article//figure[about(., painting)]"
  in
  Alcotest.(check bool) "exclusion removes answers" true
    (List.length with_neg.strategy.answers
    <= List.length without_neg.strategy.answers)

let test_hits_are_presentable () =
  let engine = engine_for Queries.Ieee in
  let o =
    Trex.query engine ~k:5 ~method_:Trex.Strategy.Era_method
      "//sec[about(., information retrieval)]"
  in
  let hits = Trex.hits engine ~limit:5 o.strategy.answers in
  Alcotest.(check bool) "some hits" true (hits <> []);
  List.iteri
    (fun i (h : Trex.hit) ->
      check Alcotest.int "rank" (i + 1) h.rank;
      Alcotest.(check bool) "doc name" true (h.doc_name <> "");
      Alcotest.(check bool) "xpath mentions sec" true
        (String.length h.xpath > 0);
      Alcotest.(check bool) "snippet non-empty" true (String.length h.snippet > 0))
    hits

let test_persistence_roundtrip () =
  let dir = Filename.temp_file "trex_engine" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let coll = Gen.ieee ~doc_count:20 ~seed:5 () in
  let nexi = "//sec[about(., information retrieval)]" in
  let answers1 =
    let env = Trex.Env.on_disk dir in
    let engine = Trex.build ~env ~alias:coll.alias (coll.docs ()) in
    ignore (Trex.materialize engine nexi);
    let o = Trex.query engine ~k:10 ~method_:Trex.Strategy.Merge_method nexi in
    Trex.Env.close env;
    o.strategy.answers
  in
  let env2 = Trex.Env.on_disk dir in
  let engine2 = Trex.attach ~env:env2 () in
  (* Materialized lists survive: Merge runs without rebuilding. *)
  let o2 = Trex.query engine2 ~k:10 ~method_:Trex.Strategy.Merge_method nexi in
  Alcotest.(check bool) "answers identical after reopen" true
    (Trex.Answer.equal answers1 o2.strategy.answers);
  Trex.Env.close env2

let test_table_sizes_reported () =
  let engine = engine_for Queries.Ieee in
  let sizes = Trex.table_sizes engine in
  Alcotest.(check bool) "elements" true (sizes.elements_bytes > 0);
  Alcotest.(check bool) "postings" true (sizes.postings_bytes > 0);
  Alcotest.(check bool) "postings biggest" true
    (sizes.postings_bytes > sizes.elements_bytes / 10)

let test_advise_end_to_end () =
  let coll = Gen.ieee ~doc_count:20 ~seed:9 () in
  let engine = Trex.build ~env:(Trex.Env.in_memory ()) ~alias:coll.alias (coll.docs ()) in
  let translate nexi =
    let o = Trex.query engine ~k:5 ~method_:Trex.Strategy.Era_method nexi in
    ( Trex.Translate.all_sids o.translation,
      Trex.Translate.all_terms o.translation )
  in
  let s1, t1 = translate "//sec[about(., information retrieval)]" in
  let s2, t2 = translate "//article[about(., genetic algorithm)]" in
  let workload =
    Trex.Workload.create
      [
        { Trex.Workload.id = "a"; sids = s1; terms = t1; k = 10; frequency = 0.7 };
        { Trex.Workload.id = "b"; sids = s2; terms = t2; k = 10; frequency = 0.3 };
      ]
  in
  let plan, profiles = Trex.advise engine ~workload ~budget:max_int ~runs:1 () in
  check Alcotest.int "profiles" 2 (List.length profiles);
  check Alcotest.int "decisions" 2 (List.length plan.decisions);
  Alcotest.(check bool) "plan saving non-negative" true (plan.expected_saving >= 0.0);
  (* Compare solvers on the SAME measured profiles — re-measuring would
     compare noise, not plans. *)
  let plan_opt = Trex.Advisor.branch_and_bound ~budget:max_int profiles in
  Alcotest.(check bool) "optimal at least greedy" true
    (plan_opt.expected_saving >= plan.expected_saving -. 1e-9)

let test_structured_phrase_and_must () =
  (* Hand-built corpus where phrase adjacency and +term conjunction
     change the result set. *)
  let docs =
    [
      ("adj.xml", "<a><s><p>ranked information retrieval systems</p></s></a>");
      ("gap.xml", "<a><s><p>information about text retrieval</p></s></a>");
      ("only-info.xml", "<a><s><p>information theory background</p></s></a>");
    ]
  in
  let engine = Trex.build ~env:(Trex.Env.in_memory ()) (List.to_seq docs) in
  let answers nexi =
    (Trex.query_structured engine ~k:100 nexi).strategy.answers
    |> List.map (fun (e : Trex.Answer.entry) -> e.element.Trex.Types.docid)
    |> List.sort compare
  in
  (* Plain disjunction: all three documents' s elements hit. *)
  check
    (Alcotest.list Alcotest.int)
    "disjunction" [ 0; 1; 2 ]
    (answers "//a//s[about(., information retrieval)]");
  (* Phrase: only the document with adjacent tokens survives. *)
  check
    (Alcotest.list Alcotest.int)
    "phrase" [ 0 ]
    (answers "//a//s[about(., \"information retrieval\")]");
  (* +retrieval: conjunctive, so only-info drops out. *)
  check
    (Alcotest.list Alcotest.int)
    "must" [ 0; 1 ]
    (answers "//a//s[about(., information +retrieval)]")

let test_add_document_invalidates_indexes () =
  let coll = Gen.ieee ~doc_count:15 ~seed:21 () in
  let engine = Trex.build ~env:(Trex.Env.in_memory ()) ~alias:coll.alias (coll.docs ()) in
  let nexi = "//sec[about(., information retrieval)]" in
  ignore (Trex.materialize engine nexi);
  let before = Trex.query engine ~k:1000 ~method_:Trex.Strategy.Merge_method nexi in
  (* Add a document stuffed with the query's terms inside a sec. *)
  let xml =
    "<books><journal><article><bdy><sec><st>information retrieval information \
     retrieval</st><p>information retrieval information retrieval information \
     retrieval information retrieval</p></sec></bdy></article></journal></books>"
  in
  let docid = Trex.add_document engine ~name:"new.xml" ~xml in
  Alcotest.(check bool) "docid appended" true (docid = 15);
  (* The affected lists were dropped: Merge is unavailable until
     rebuilt. *)
  Alcotest.(check bool) "merge invalidated" true
    (try
       ignore (Trex.query engine ~k:10 ~method_:Trex.Strategy.Merge_method nexi);
       false
     with Trex.Rpl.Cursor.Missing_list _ -> true);
  (* ERA sees the new document immediately. *)
  let era = Trex.query engine ~k:100000 ~method_:Trex.Strategy.Era_method nexi in
  Alcotest.(check bool) "new answers visible" true
    (List.length era.strategy.answers > List.length before.strategy.answers);
  Alcotest.(check bool) "new doc ranks first" true
    (match era.strategy.answers with
    | top :: _ -> top.element.Trex.Types.docid = docid
    | [] -> false);
  (* Rebuild and re-check agreement. *)
  ignore (Trex.materialize engine nexi);
  let merge = Trex.query engine ~k:100000 ~method_:Trex.Strategy.Merge_method nexi in
  Alcotest.(check bool) "merge agrees after rebuild" true
    (Trex.Answer.equal era.strategy.answers merge.strategy.answers)

let test_vacuum_reclaims_dropped_lists () =
  let coll = Gen.ieee ~doc_count:60 ~seed:23 () in
  let engine = Trex.build ~env:(Trex.Env.in_memory ()) ~alias:coll.alias (coll.docs ()) in
  ignore (Trex.materialize engine "//sec[about(., information retrieval)]");
  ignore (Trex.materialize engine "//article[about(., music)]");
  let before = Trex.table_sizes engine in
  (* The fixture must be big enough that the lists span several pages,
     or there is nothing for vacuum to reclaim. *)
  Alcotest.(check bool) "fixture spans pages" true (before.rpls_bytes > 16384);
  Trex.Rpl.drop_all (Trex.index engine) Trex.Rpl.Rpl;
  Trex.Rpl.drop_all (Trex.index engine) Trex.Rpl.Erpl;
  (* Dropping alone leaves the pages allocated... *)
  let dropped = Trex.table_sizes engine in
  Alcotest.(check bool) "drop does not shrink storage" true
    (dropped.rpls_bytes >= before.rpls_bytes);
  (* ...vacuum reclaims them. *)
  Trex.vacuum engine;
  let after = Trex.table_sizes engine in
  Alcotest.(check bool) "vacuum shrinks rpls" true
    (after.rpls_bytes < before.rpls_bytes);
  Alcotest.(check bool) "vacuum shrinks erpls" true
    (after.erpls_bytes < before.erpls_bytes);
  (* The engine still works: rebuild and query. *)
  ignore (Trex.materialize engine "//sec[about(., information retrieval)]");
  let o =
    Trex.query engine ~k:5 ~method_:Trex.Strategy.Merge_method
      "//sec[about(., information retrieval)]"
  in
  Alcotest.(check bool) "queryable after vacuum" true (o.strategy.answers <> [])

let test_syntax_error_propagates () =
  let engine = engine_for Queries.Ieee in
  Alcotest.(check bool) "syntax error" true
    (try
       ignore (Trex.query engine "not a query");
       false
     with Trex.Nexi_parser.Syntax_error _ -> true)

let () =
  Alcotest.run "trex_integration"
    [
      ( "paper-queries",
        [
          Alcotest.test_case "translate and run" `Quick
            test_paper_queries_translate_and_run;
          Alcotest.test_case "all strategies agree" `Quick
            test_all_strategies_agree_on_paper_queries;
        ] );
      ( "engine",
        [
          Alcotest.test_case "default method selection" `Quick
            test_query_default_method_uses_available_indexes;
          Alcotest.test_case "strict interpretation" `Quick
            test_strict_filters_to_target;
          Alcotest.test_case "structured evaluation" `Quick test_structured_evaluation;
          Alcotest.test_case "structured exclusion" `Quick test_structured_exclusion;
          Alcotest.test_case "hits presentable" `Quick test_hits_are_presentable;
          Alcotest.test_case "persistence roundtrip" `Quick test_persistence_roundtrip;
          Alcotest.test_case "table sizes" `Quick test_table_sizes_reported;
          Alcotest.test_case "advise end-to-end" `Quick test_advise_end_to_end;
          Alcotest.test_case "structured phrase and must" `Quick
            test_structured_phrase_and_must;
          Alcotest.test_case "add_document invalidates indexes" `Quick
            test_add_document_invalidates_indexes;
          Alcotest.test_case "vacuum reclaims dropped lists" `Quick
            test_vacuum_reclaims_dropped_lists;
          Alcotest.test_case "syntax error propagates" `Quick
            test_syntax_error_propagates;
        ] );
    ]
