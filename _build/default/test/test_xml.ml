(* Tests for trex_xml: escaping, SAX parser, DOM, positions. *)

module Sax = Trex_xml.Sax
module Dom = Trex_xml.Dom
module Escape = Trex_xml.Escape
module Prng = Trex_util.Prng

let check = Alcotest.check

(* ---- escaping ---- *)

let test_escape_roundtrip () =
  let s = "a < b && c > \"d\" 'e'" in
  check Alcotest.string "text" s (Escape.unescape (Escape.escape_text s));
  check Alcotest.string "attr" s (Escape.unescape (Escape.escape_attr s))

let test_numeric_entities () =
  check Alcotest.string "decimal" "A" (Escape.unescape "&#65;");
  check Alcotest.string "hex" "A" (Escape.unescape "&#x41;");
  check Alcotest.string "two-byte utf8" "\xc3\xa9" (Escape.unescape "&#233;")

let test_unknown_entity () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Escape.unescape "&bogus;");
       false
     with Failure _ -> true)

(* ---- SAX ---- *)

let events src =
  let out = ref [] in
  Sax.parse src (fun e -> out := e :: !out);
  List.rev !out

let test_sax_simple () =
  let evs = events "<a><b>hi</b></a>" in
  match evs with
  | [
   Sax.Start_element { tag = "a"; start_pos = 0; _ };
   Sax.Start_element { tag = "b"; start_pos = 3; _ };
   Sax.Text { content = "hi"; start_pos = 6 };
   Sax.End_element { tag = "b"; end_pos = 12 };
   Sax.End_element { tag = "a"; end_pos = 16 };
  ] ->
      ()
  | _ -> Alcotest.fail "unexpected event stream"

let test_sax_attributes () =
  let evs = events {|<a x="1" y='two &amp; three'/>|} in
  match evs with
  | [ Sax.Start_element { tag = "a"; attrs; _ }; Sax.End_element _ ] ->
      check
        (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string))
        "attrs"
        [ ("x", "1"); ("y", "two & three") ]
        attrs
  | _ -> Alcotest.fail "unexpected events"

let test_sax_prolog_comment_pi_doctype () =
  let src =
    "<?xml version=\"1.0\"?>\n<!DOCTYPE a [<!ELEMENT a ANY>]>\n<!-- c -->\n<a><?pi data?><!-- inner -->t</a>"
  in
  let evs = events src in
  match evs with
  | [ Sax.Start_element { tag = "a"; _ }; Sax.Text { content = "t"; _ }; Sax.End_element _ ]
    ->
      ()
  | _ -> Alcotest.fail "prolog constructs should be skipped"

let test_sax_cdata () =
  let evs = events "<a><![CDATA[x < y & z]]></a>" in
  match evs with
  | [ Sax.Start_element _; Sax.Text { content; _ }; Sax.End_element _ ] ->
      check Alcotest.string "cdata raw" "x < y & z" content
  | _ -> Alcotest.fail "unexpected events"

let test_sax_whitespace_suppressed () =
  let evs = events "<a>\n  <b/>\n</a>" in
  let texts =
    List.filter (function Sax.Text _ -> true | _ -> false) evs
  in
  check Alcotest.int "no whitespace text events" 0 (List.length texts)

let malformed src =
  try
    ignore (events src);
    false
  with Sax.Malformed _ -> true

let test_sax_malformed () =
  List.iter
    (fun src -> Alcotest.(check bool) src true (malformed src))
    [
      "";
      "just text";
      "<a>";
      "<a></b>";
      "<a></a></a>";
      "<a><b></a></b>";
      "<a attr></a>";
      "<a 'v'></a>";
      "<a></a><b></b>";
      "<a>&unterminated</a>";
      "<a><![CDATA[x]]</a>";
      "<>empty</>";
    ]

let test_sax_positions_track_bytes () =
  let src = "<root><item>abc</item><item>de</item></root>" in
  let spans = ref [] in
  let starts = ref [] in
  Sax.parse src (fun e ->
      match e with
      | Sax.Start_element { start_pos; tag; _ } -> starts := (tag, start_pos) :: !starts
      | Sax.End_element { end_pos; tag } -> spans := (tag, end_pos) :: !spans
      | Sax.Text _ -> ());
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "start offsets"
    [ ("root", 0); ("item", 6); ("item", 22) ]
    (List.rev !starts);
  (* End of the first item is just after "</item>" at byte 22. *)
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "end offsets"
    [ ("item", 22); ("item", 37); ("root", 44) ]
    (List.rev !spans)

(* ---- DOM ---- *)

let test_dom_structure () =
  let doc = Dom.parse "<a x=\"1\"><b>hi</b><b>ho</b></a>" in
  check Alcotest.string "root tag" "a" doc.root.tag;
  check (Alcotest.option Alcotest.string) "attr" (Some "1") (Dom.attr doc.root "x");
  check Alcotest.int "element count" 3 (Dom.count_elements doc);
  check Alcotest.string "text content" "hi ho" (Dom.text_content doc.root)

let test_dom_positions_give_source_spans () =
  let src = "<a><b>hi</b></a>" in
  let doc = Dom.parse src in
  let bs = Dom.find_all doc (fun e -> e.tag = "b") in
  match bs with
  | [ b ] ->
      check Alcotest.string "span extracts source" "<b>hi</b>"
        (String.sub src b.start_pos (Dom.length b))
  | _ -> Alcotest.fail "expected one b"

let test_dom_paths () =
  let doc = Dom.parse "<a><b><c/></b><c/></a>" in
  let paths = ref [] in
  Dom.iter_elements doc (fun path _ -> paths := String.concat "/" path :: !paths);
  check
    (Alcotest.list Alcotest.string)
    "paths in document order"
    [ "a"; "a/b"; "a/b/c"; "a/c" ]
    (List.rev !paths)

let test_dom_serialize_roundtrip () =
  let src = "<a x=\"v&quot;w\"><b>text &amp; more</b><c/>tail</a>" in
  let doc = Dom.parse src in
  let doc2 = Dom.parse (Dom.to_string doc.root) in
  Alcotest.(check bool) "structure preserved" true
    (Dom.equal_structure doc.root doc2.root)

(* Random XML tree generator for the round-trip property. *)
let gen_tree rng =
  let tags = [| "a"; "b"; "c"; "data"; "x1" |] in
  let texts = [| "hello"; "a < b"; "x & y"; "\"quoted\""; "plain text" |] in
  let rec gen depth : Dom.node =
    if depth > 3 || Prng.int rng 3 = 0 then
      Dom.Text { content = Prng.pick rng texts; start_pos = 0 }
    else
      Dom.Element (gen_el depth)
  and gen_el depth =
    let n_children = Prng.int rng 4 in
    let children = List.init n_children (fun _ -> gen (depth + 1)) in
    (* Avoid adjacent text nodes, which merge on reparse. *)
    let rec dedup = function
      | Dom.Text _ :: (Dom.Text _ :: _ as rest) -> dedup rest
      | x :: rest -> x :: dedup rest
      | [] -> []
    in
    let attrs = if Prng.bool rng then [ ("k", "v \"w\" & z") ] else [] in
    {
      Dom.tag = Prng.pick rng tags;
      attrs;
      children = dedup children;
      start_pos = 0;
      end_pos = 0;
    }
  in
  gen_el 0

let prop_dom_roundtrip =
  QCheck.Test.make ~name:"serialize/parse round-trip preserves structure" ~count:200
    QCheck.(make Gen.(map (fun seed -> gen_tree (Prng.create seed)) int))
    (fun el ->
      let doc = Dom.parse (Dom.to_string el) in
      Dom.equal_structure el doc.root)

let prop_parser_never_wrong_exception =
  QCheck.Test.make ~name:"parser raises only Malformed on junk" ~count:300
    QCheck.(string_of_size Gen.(0 -- 60))
    (fun s ->
      try
        ignore (Dom.parse s);
        true
      with
      | Sax.Malformed _ -> true
      | _ -> false)

let qtest = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "trex_xml"
    [
      ( "escape",
        [
          Alcotest.test_case "roundtrip" `Quick test_escape_roundtrip;
          Alcotest.test_case "numeric entities" `Quick test_numeric_entities;
          Alcotest.test_case "unknown entity" `Quick test_unknown_entity;
        ] );
      ( "sax",
        [
          Alcotest.test_case "simple events" `Quick test_sax_simple;
          Alcotest.test_case "attributes" `Quick test_sax_attributes;
          Alcotest.test_case "prolog/comment/pi/doctype" `Quick
            test_sax_prolog_comment_pi_doctype;
          Alcotest.test_case "cdata" `Quick test_sax_cdata;
          Alcotest.test_case "whitespace suppressed" `Quick
            test_sax_whitespace_suppressed;
          Alcotest.test_case "malformed inputs raise" `Quick test_sax_malformed;
          Alcotest.test_case "byte positions" `Quick test_sax_positions_track_bytes;
        ] );
      ( "dom",
        [
          Alcotest.test_case "structure" `Quick test_dom_structure;
          Alcotest.test_case "positions give source spans" `Quick
            test_dom_positions_give_source_spans;
          Alcotest.test_case "paths" `Quick test_dom_paths;
          Alcotest.test_case "serialize roundtrip" `Quick test_dom_serialize_roundtrip;
          qtest prop_dom_roundtrip;
          qtest prop_parser_never_wrong_exception;
        ] );
    ]
