(* Tests for trex_summary: alias mappings, path patterns, summaries. *)

module Alias = Trex_summary.Alias
module Pattern = Trex_summary.Pattern
module Summary = Trex_summary.Summary
module Dom = Trex_xml.Dom

let check = Alcotest.check

(* ---- alias ---- *)

let test_alias_basic () =
  let a = Alias.of_list [ ("ss1", "sec"); ("ss2", "sec") ] in
  check Alcotest.string "mapped" "sec" (Alias.apply a "ss1");
  check Alcotest.string "unmapped" "p" (Alias.apply a "p");
  Alcotest.(check bool) "not identity" false (Alias.is_identity a);
  Alcotest.(check bool) "identity" true (Alias.is_identity Alias.identity)

let test_alias_conflict () =
  Alcotest.(check bool) "conflicting synonym rejected" true
    (try
       ignore (Alias.of_list [ ("x", "a"); ("x", "b") ]);
       false
     with Invalid_argument _ -> true)

(* ---- pattern ---- *)

let test_pattern_parse () =
  let p = Pattern.parse "//article//sec" in
  check Alcotest.string "roundtrip" "//article//sec" (Pattern.to_string p);
  check Alcotest.int "two steps" 2 (List.length p);
  let p2 = Pattern.parse "/books/journal//*" in
  check Alcotest.string "mixed axes" "/books/journal//*" (Pattern.to_string p2)

let test_pattern_parse_errors () =
  List.iter
    (fun src ->
      Alcotest.(check bool) src true
        (try
           ignore (Pattern.parse src);
           false
         with Failure _ -> true))
    [ ""; "article"; "//"; "//a/"; "//a b" ]

let test_pattern_alias () =
  let a = Alias.of_list [ ("ss1", "sec") ] in
  let p = Pattern.apply_alias a (Pattern.parse "//article//ss1") in
  check Alcotest.string "aliased" "//article//sec" (Pattern.to_string p)

let test_matches_path () =
  let m pat path = Pattern.matches_path (Pattern.parse pat) path in
  Alcotest.(check bool) "//sec matches tail" true (m "//sec" [ "a"; "b"; "sec" ]);
  Alcotest.(check bool) "//sec needs tail" false (m "//sec" [ "a"; "sec"; "b" ]);
  Alcotest.(check bool) "descendant chain" true
    (m "//article//sec" [ "books"; "article"; "bdy"; "sec" ]);
  Alcotest.(check bool) "order matters" false
    (m "//sec//article" [ "books"; "article"; "bdy"; "sec" ]);
  Alcotest.(check bool) "child axis strict" true (m "/a/b" [ "a"; "b" ]);
  Alcotest.(check bool) "child axis gap rejected" false (m "/a/b" [ "a"; "x"; "b" ]);
  Alcotest.(check bool) "absolute root" false (m "/b" [ "a"; "b" ]);
  Alcotest.(check bool) "wildcard" true (m "//a/*" [ "a"; "anything" ]);
  Alcotest.(check bool) "empty path" false (m "//a" [])

let test_matches_suffix () =
  let m pat suffix = Pattern.matches_suffix (Pattern.parse pat) suffix in
  (* Some path ending with [bdy; sec] can match //article//sec. *)
  Alcotest.(check bool) "descendant absorbed above" true
    (m "//article//sec" [ "bdy"; "sec" ]);
  (* ...but nothing ending in [bdy; p] can match //sec as last step. *)
  Alcotest.(check bool) "last step must match" false (m "//sec" [ "bdy"; "p" ]);
  (* /books/journal can be absorbed only if the suffix allows a root
     anchoring: suffix [journal; article] might sit at the root. *)
  Alcotest.(check bool) "child into suffix head" true
    (m "/journal/article" [ "journal"; "article" ]);
  (* A child step anchored mid-suffix with no predecessor is invalid. *)
  Alcotest.(check bool) "child cannot skip into middle" false
    (m "/x/article" [ "journal"; "article" ]);
  Alcotest.(check bool) "descendant into middle ok" true
    (m "//x//article" [ "journal"; "article" ]);
  Alcotest.(check bool) "suffix shorter than pattern tail" false
    (m "//a/b/c" [ "b" ])

(* ---- summaries ---- *)

let doc_of s = Dom.parse s

let sample_doc =
  doc_of
    "<books><journal><article><bdy><sec><p>x</p><p>y</p></sec><ss1><p>z</p></ss1></bdy></article></journal></books>"

let ieee_alias = Alias.of_list [ ("ss1", "sec"); ("ss2", "sec") ]

let test_incoming_summary_extents () =
  let s = Summary.create Summary.Incoming in
  let observed = Summary.observe_document s sample_doc in
  (* Every element observed exactly once: extent sizes partition. *)
  let total = List.fold_left (fun acc sid -> acc + Summary.extent_size s sid) 0 (Summary.sids s) in
  check Alcotest.int "extents partition elements" (List.length observed) total;
  (* Without aliases, sec and ss1 have different sids. *)
  let sid_sec = Summary.sid_of_path s [ "books"; "journal"; "article"; "bdy"; "sec" ] in
  let sid_ss1 = Summary.sid_of_path s [ "books"; "journal"; "article"; "bdy"; "ss1" ] in
  Alcotest.(check bool) "sec has sid" true (sid_sec <> None);
  Alcotest.(check bool) "distinct sids" true (sid_sec <> sid_ss1)

let test_alias_summary_merges_synonyms () =
  let s = Summary.create ~alias:ieee_alias Summary.Incoming in
  ignore (Summary.observe_document s sample_doc);
  let sid_sec = Summary.sid_of_path s [ "books"; "journal"; "article"; "bdy"; "sec" ] in
  let sid_ss1 = Summary.sid_of_path s [ "books"; "journal"; "article"; "bdy"; "ss1" ] in
  check (Alcotest.option Alcotest.int) "ss1 folded into sec" sid_sec sid_ss1;
  (match sid_sec with
  | Some sid -> check Alcotest.int "merged extent size" 2 (Summary.extent_size s sid)
  | None -> Alcotest.fail "sec sid missing")

let test_tag_summary () =
  let s = Summary.create Summary.Tag in
  ignore (Summary.observe_document s sample_doc);
  (* One node per distinct tag: books, journal, article, bdy, sec, ss1, p. *)
  check Alcotest.int "node count" 7 (Summary.node_count s);
  let sid_p = Summary.sid_of_path s [ "anything"; "p" ] in
  (match sid_p with
  | Some sid ->
      check Alcotest.int "p extent counts all p elements" 3 (Summary.extent_size s sid);
      check Alcotest.string "xpath" "//p" (Summary.xpath_of_sid s sid)
  | None -> Alcotest.fail "p sid missing")

let test_incoming_refines_tag () =
  (* Every incoming extent maps into exactly one tag extent. *)
  let si = Summary.create Summary.Incoming and st = Summary.create Summary.Tag in
  ignore (Summary.observe_document si sample_doc);
  ignore (Summary.observe_document st sample_doc);
  List.iter
    (fun sid ->
      let path = Summary.label_path si sid in
      let tag_sid = Summary.sid_of_path st path in
      Alcotest.(check bool) "tag extent exists" true (tag_sid <> None);
      Alcotest.(check bool) "refinement: incoming extent no larger" true
        (Summary.extent_size si sid
        <= Summary.extent_size st (Option.get tag_sid)))
    (Summary.sids si)

let test_match_pattern_incoming () =
  let s = Summary.create ~alias:ieee_alias Summary.Incoming in
  ignore (Summary.observe_document s sample_doc);
  let match_count p = List.length (Summary.match_pattern s (Pattern.parse p)) in
  check Alcotest.int "//sec (alias merges ss1)" 1 (match_count "//sec");
  check Alcotest.int "//article//p" 1 (match_count "//article//p");
  check Alcotest.int "//bdy//*" 2 (match_count "//bdy//*");
  check Alcotest.int "/books/journal/article" 1 (match_count "/books/journal/article");
  check Alcotest.int "/sec at root" 0 (match_count "/sec");
  check Alcotest.int "//nonexistent" 0 (match_count "//nothere");
  (* //ss1 aliased to //sec finds the merged extent. *)
  check Alcotest.int "//ss1 via alias" 1 (match_count "//ss1")

let test_match_pattern_tag_uses_last_test () =
  let s = Summary.create Summary.Tag in
  ignore (Summary.observe_document s sample_doc);
  let sids = Summary.match_pattern s (Pattern.parse "//article//p") in
  check Alcotest.int "tag summary keys on last label" 1 (List.length sids);
  check Alcotest.string "it is the p extent" "p" (Summary.label s (List.hd sids))

let test_nesting_free () =
  let nested = doc_of "<a><sec><sec><p>x</p></sec></sec></a>" in
  let st = Summary.create Summary.Tag in
  ignore (Summary.observe_document st nested);
  Alcotest.(check bool) "tag summary with nested sec not nesting-free" false
    (Summary.nesting_free st);
  let si = Summary.create Summary.Incoming in
  ignore (Summary.observe_document si nested);
  Alcotest.(check bool) "incoming summary always nesting-free" true
    (Summary.nesting_free si)

let test_observe_empty_path () =
  let s = Summary.create Summary.Incoming in
  Alcotest.check_raises "empty path" (Invalid_argument "Summary.observe: empty path")
    (fun () -> ignore (Summary.observe s []))

let test_serialization_roundtrip () =
  let s = Summary.create ~alias:ieee_alias Summary.Incoming in
  ignore (Summary.observe_document s sample_doc);
  let s2 = Summary.of_string (Summary.to_string s) in
  check Alcotest.int "node count" (Summary.node_count s) (Summary.node_count s2);
  List.iter
    (fun sid ->
      check Alcotest.int
        (Printf.sprintf "extent %d" sid)
        (Summary.extent_size s sid) (Summary.extent_size s2 sid);
      check
        (Alcotest.list Alcotest.string)
        (Printf.sprintf "path %d" sid)
        (Summary.label_path s sid) (Summary.label_path s2 sid))
    (Summary.sids s);
  (* Pattern matching agrees after the roundtrip. *)
  let p = Pattern.parse "//bdy//*" in
  check (Alcotest.list Alcotest.int) "match agrees" (Summary.match_pattern s p)
    (Summary.match_pattern s2 p)

(* ---- A(k) summaries ---- *)

let ak_doc =
  doc_of
    "<books><journal><article><bdy><sec><p>x</p></sec></bdy></article><article><bdy><p>y</p></bdy></article></journal></books>"

let test_ak_invalid_k () =
  Alcotest.check_raises "k=0" (Invalid_argument "Summary.create: A(k) requires k >= 1")
    (fun () -> ignore (Summary.create (Summary.A_k 0)))

let test_ak1_equals_tag_partition () =
  (* A(1) partitions by own tag, like the Tag summary. *)
  let a1 = Summary.create (Summary.A_k 1) in
  let tag = Summary.create Summary.Tag in
  ignore (Summary.observe_document a1 ak_doc);
  ignore (Summary.observe_document tag ak_doc);
  List.iter
    (fun sid ->
      let l = Summary.label tag sid in
      let a1_sid = Summary.sid_of_path a1 [ l ] in
      Alcotest.(check bool) ("A(1) has " ^ l) true (a1_sid <> None);
      check Alcotest.int ("extent of " ^ l)
        (Summary.extent_size tag sid)
        (Summary.extent_size a1 (Option.get a1_sid)))
    (Summary.sids tag)

let test_ak_distinguishes_by_suffix () =
  let a2 = Summary.create (Summary.A_k 2) in
  ignore (Summary.observe_document a2 ak_doc);
  (* p under sec vs p under bdy have different 2-suffixes. *)
  let p_sec = Summary.sid_of_path a2 [ "whatever"; "sec"; "p" ] in
  let p_bdy = Summary.sid_of_path a2 [ "whatever"; "bdy"; "p" ] in
  Alcotest.(check bool) "both exist" true (p_sec <> None && p_bdy <> None);
  Alcotest.(check bool) "distinct" true (p_sec <> p_bdy);
  check (Alcotest.list Alcotest.string) "suffix path (root-most first)"
    [ "sec"; "p" ]
    (Summary.label_path a2 (Option.get p_sec));
  check Alcotest.string "label is own tag" "p" (Summary.label a2 (Option.get p_sec))

let test_ak_match_pattern_over_approximates () =
  let a2 = Summary.create (Summary.A_k 2) in
  ignore (Summary.observe_document a2 ak_doc);
  let inc = Summary.create Summary.Incoming in
  ignore (Summary.observe_document inc ak_doc);
  let covered pattern =
    (* Every element matched under the exact (incoming) summary lies in
       some extent the A(2) translation returns. *)
    let exact = Summary.match_pattern inc (Pattern.parse pattern) in
    let approx = Summary.match_pattern a2 (Pattern.parse pattern) in
    List.for_all
      (fun inc_sid ->
        let path = Summary.label_path inc inc_sid in
        match Summary.sid_of_path a2 path with
        | Some ak_sid -> List.mem ak_sid approx
        | None -> false)
      exact
  in
  List.iter
    (fun p -> Alcotest.(check bool) p true (covered p))
    [ "//sec//p"; "//article//p"; "//bdy"; "/books/journal/article"; "//p" ]

let test_ak_extents_partition () =
  let a2 = Summary.create (Summary.A_k 2) in
  let observed = Summary.observe_document a2 ak_doc in
  let total =
    List.fold_left (fun acc sid -> acc + Summary.extent_size a2 sid) 0 (Summary.sids a2)
  in
  check Alcotest.int "partition" (List.length observed) total

let test_ak_nesting_detection () =
  let nested = doc_of "<r><sec><sec><p>x</p></sec></sec></r>" in
  let a1 = Summary.create (Summary.A_k 1) in
  ignore (Summary.observe_document a1 nested);
  Alcotest.(check bool) "A(1) sees sec-in-sec nesting" false (Summary.nesting_free a1);
  let a2 = Summary.create (Summary.A_k 2) in
  ignore (Summary.observe_document a2 nested);
  (* 2-suffixes differ: [r;sec] vs [sec;sec]. *)
  Alcotest.(check bool) "A(2) separates them" true (Summary.nesting_free a2)

let test_ak_serialization_roundtrip () =
  let a2 = Summary.create ~alias:ieee_alias (Summary.A_k 2) in
  ignore (Summary.observe_document a2 sample_doc);
  let a2' = Summary.of_string (Summary.to_string a2) in
  Alcotest.(check bool) "criterion survives" true
    (Summary.criterion a2' = Summary.A_k 2);
  check Alcotest.int "nodes" (Summary.node_count a2) (Summary.node_count a2');
  let p = Pattern.parse "//bdy//p" in
  check (Alcotest.list Alcotest.int) "match agrees" (Summary.match_pattern a2 p)
    (Summary.match_pattern a2' p)

let test_of_string_rejects_garbage () =
  Alcotest.(check bool) "bad magic" true
    (try
       ignore (Summary.of_string "garbage!");
       false
     with Failure _ -> true)

(* Property: observing random documents, extent sizes always sum to the
   number of observed elements, and sid_of_path finds every observed
   path. *)
let gen_random_doc seed =
  let rng = Trex_util.Prng.create seed in
  let tags = [| "a"; "b"; "c"; "d" |] in
  let rec build depth =
    let tag = Trex_util.Prng.pick rng tags in
    let n = if depth > 3 then 0 else Trex_util.Prng.int rng 4 in
    let children = List.concat (List.init n (fun _ -> [ build (depth + 1) ])) in
    Printf.sprintf "<%s>%s</%s>" tag (String.concat "" children) tag
  in
  build 0

let prop_extents_partition =
  QCheck.Test.make ~name:"extents partition observed elements" ~count:100 QCheck.int
    (fun seed ->
      let doc = doc_of (gen_random_doc seed) in
      let s = Summary.create Summary.Incoming in
      let observed = Summary.observe_document s doc in
      let total =
        List.fold_left (fun acc sid -> acc + Summary.extent_size s sid) 0 (Summary.sids s)
      in
      total = List.length observed
      && List.for_all
           (fun (sid, _) -> List.mem sid (Summary.sids s))
           observed)

let qtest = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "trex_summary"
    [
      ( "alias",
        [
          Alcotest.test_case "basic" `Quick test_alias_basic;
          Alcotest.test_case "conflict" `Quick test_alias_conflict;
        ] );
      ( "pattern",
        [
          Alcotest.test_case "parse" `Quick test_pattern_parse;
          Alcotest.test_case "parse errors" `Quick test_pattern_parse_errors;
          Alcotest.test_case "alias rewrite" `Quick test_pattern_alias;
          Alcotest.test_case "matches_path" `Quick test_matches_path;
          Alcotest.test_case "matches_suffix" `Quick test_matches_suffix;
        ] );
      ( "summary",
        [
          Alcotest.test_case "incoming extents" `Quick test_incoming_summary_extents;
          Alcotest.test_case "alias merges synonyms" `Quick
            test_alias_summary_merges_synonyms;
          Alcotest.test_case "tag summary" `Quick test_tag_summary;
          Alcotest.test_case "incoming refines tag" `Quick test_incoming_refines_tag;
          Alcotest.test_case "match_pattern incoming" `Quick test_match_pattern_incoming;
          Alcotest.test_case "match_pattern tag" `Quick
            test_match_pattern_tag_uses_last_test;
          Alcotest.test_case "nesting freedom" `Quick test_nesting_free;
          Alcotest.test_case "observe empty path" `Quick test_observe_empty_path;
          Alcotest.test_case "serialization roundtrip" `Quick
            test_serialization_roundtrip;
          Alcotest.test_case "of_string rejects garbage" `Quick
            test_of_string_rejects_garbage;
          qtest prop_extents_partition;
        ] );
      ( "a(k)",
        [
          Alcotest.test_case "invalid k" `Quick test_ak_invalid_k;
          Alcotest.test_case "A(1) = tag partition" `Quick test_ak1_equals_tag_partition;
          Alcotest.test_case "distinguishes by suffix" `Quick
            test_ak_distinguishes_by_suffix;
          Alcotest.test_case "match over-approximates" `Quick
            test_ak_match_pattern_over_approximates;
          Alcotest.test_case "extents partition" `Quick test_ak_extents_partition;
          Alcotest.test_case "nesting detection" `Quick test_ak_nesting_detection;
          Alcotest.test_case "serialization roundtrip" `Quick
            test_ak_serialization_roundtrip;
        ] );
    ]
