(* Tests for trex_invindex: tables, index build, iterators. *)

module Env = Trex_storage.Env
module Summary = Trex_summary.Summary
module Alias = Trex_summary.Alias
module Pattern = Trex_summary.Pattern
module Types = Trex_invindex.Types
module Tables = Trex_invindex.Tables
module Index = Trex_invindex.Index
module Analyzer = Trex_text.Analyzer

let check = Alcotest.check

(* Two tiny documents with hand-checkable content. The exact analyzer
   keeps tokens verbatim, so expectations are easy to state. *)
let docs =
  [
    ("one.xml", "<a><b>red fox</b><b>red red dog</b></a>");
    ("two.xml", "<a><b>blue fox</b><c>green fox fox</c></a>");
  ]

let build_index () =
  let env = Env.in_memory () in
  let summary = Summary.create Summary.Incoming in
  let index =
    Index.build ~env ~summary ~analyzer:Analyzer.exact (List.to_seq docs)
  in
  (env, summary, index)

(* ---- types ---- *)

let test_pos_order () =
  let a = { Types.docid = 0; offset = 5 } and b = { Types.docid = 0; offset = 9 } in
  let c = { Types.docid = 1; offset = 0 } in
  Alcotest.(check bool) "same doc" true (Types.compare_pos a b < 0);
  Alcotest.(check bool) "doc dominates" true (Types.compare_pos b c < 0);
  Alcotest.(check bool) "m_pos maximal" true (Types.compare_pos c Types.m_pos < 0);
  Alcotest.(check bool) "is_m_pos" true (Types.is_m_pos Types.m_pos)

let test_element_contains () =
  let e = { Types.sid = 1; docid = 0; endpos = 20; length = 15 } in
  Alcotest.(check bool) "inside" true (Types.contains e { docid = 0; offset = 10 });
  Alcotest.(check bool) "at start" false (Types.contains e { docid = 0; offset = 5 });
  Alcotest.(check bool) "at end" false (Types.contains e { docid = 0; offset = 20 });
  Alcotest.(check bool) "other doc" false (Types.contains e { docid = 1; offset = 10 })

let test_element_containment () =
  let outer = { Types.sid = 1; docid = 0; endpos = 100; length = 90 } in
  let inner = { Types.sid = 2; docid = 0; endpos = 50; length = 20 } in
  Alcotest.(check bool) "contains" true
    (Types.element_contains_element ~outer ~inner);
  Alcotest.(check bool) "not reflexive-ish" false
    (Types.element_contains_element ~outer:inner ~inner:outer)

(* ---- table codecs ---- *)

let test_elements_codec_roundtrip () =
  let e = { Types.sid = 7; docid = 3; endpos = 123; length = 45 } in
  let k, v = Tables.Elements.encode e in
  check Alcotest.bool "roundtrip" true (Tables.Elements.decode k v = e)

let test_posting_chunk_roundtrip () =
  let positions =
    [
      { Types.docid = 0; offset = 5 };
      { Types.docid = 0; offset = 17 };
      { Types.docid = 2; offset = 3 };
      { Types.docid = 2; offset = 1000 };
    ]
  in
  let _, v = Tables.Posting_lists.encode_chunk ~token:"fox" positions in
  check Alcotest.bool "roundtrip" true
    (Tables.Posting_lists.decode_chunk v = positions)

let test_posting_chunk_empty_rejected () =
  Alcotest.(check bool) "empty chunk" true
    (try
       ignore (Tables.Posting_lists.encode_chunk ~token:"t" []);
       false
     with Invalid_argument _ -> true)

(* ---- index build ---- *)

let test_stats () =
  let _, _, index = build_index () in
  let s = Index.stats index in
  check Alcotest.int "docs" 2 s.doc_count;
  (* one.xml: a, b, b; two.xml: a, b, c -> 6 elements *)
  check Alcotest.int "elements" 6 s.element_count;
  (* tokens: red fox red red dog blue fox green fox fox = 10 *)
  check Alcotest.int "postings" 10 s.posting_count;
  (* distinct: red fox dog blue green = 5 *)
  check Alcotest.int "terms" 5 s.term_count

let test_term_stats () =
  let _, _, index = build_index () in
  (match Index.term_stats index "fox" with
  | Some row ->
      check Alcotest.int "fox df" 2 row.Tables.Terms.df;
      check Alcotest.int "fox cf" 4 row.Tables.Terms.cf
  | None -> Alcotest.fail "fox missing");
  (match Index.term_stats index "red" with
  | Some row ->
      check Alcotest.int "red df" 1 row.Tables.Terms.df;
      check Alcotest.int "red cf" 3 row.Tables.Terms.cf
  | None -> Alcotest.fail "red missing");
  check Alcotest.bool "unknown" true (Index.term_stats index "zzz" = None)

let test_documents () =
  let _, _, index = build_index () in
  let rows = Index.documents index in
  check Alcotest.int "two rows" 2 (List.length rows);
  (match Index.document index 0 with
  | Some row ->
      check Alcotest.string "name" "one.xml" row.Tables.Documents.name;
      check Alcotest.int "elements" 3 row.Tables.Documents.elements
  | None -> Alcotest.fail "doc 0 missing");
  check Alcotest.bool "missing doc" true (Index.document index 99 = None)

let test_source_and_element_text () =
  let _, summary, index = build_index () in
  check (Alcotest.option Alcotest.string) "source roundtrip"
    (Some (snd (List.hd docs)))
    (Index.source index 0);
  (* The first b element of doc 0 spans "<b>red fox</b>". *)
  let sid_b = Option.get (Summary.sid_of_path summary [ "a"; "b" ]) in
  (match Index.extent_elements index sid_b with
  | e :: _ ->
      check (Alcotest.option Alcotest.string) "element text" (Some "<b>red fox</b>")
        (Index.element_text index e)
  | [] -> Alcotest.fail "no b elements")

let test_extent_elements_ordered () =
  let _, summary, index = build_index () in
  let sid_b = Option.get (Summary.sid_of_path summary [ "a"; "b" ]) in
  let elems = Index.extent_elements index sid_b in
  check Alcotest.int "three b elements" 3 (List.length elems);
  let sorted = List.sort Types.compare_element elems in
  check Alcotest.bool "position order" true (elems = sorted)

(* ---- posting iterator ---- *)

let collect_positions index term =
  let it = Index.Posting_iter.create index term in
  let rec go acc =
    let p = Index.Posting_iter.next_position it in
    if Types.is_m_pos p then List.rev acc else go (p :: acc)
  in
  go []

let test_posting_iterator () =
  let _, _, index = build_index () in
  let fox = collect_positions index "fox" in
  check Alcotest.int "fox occurrences" 4 (List.length fox);
  let sorted = List.sort Types.compare_pos fox in
  check Alcotest.bool "position order" true (fox = sorted);
  (* Offsets point at the token text in the source. *)
  List.iter
    (fun (p : Types.pos) ->
      let src = Option.get (Index.source index p.docid) in
      check Alcotest.string "token at offset" "fox" (String.sub src p.offset 3))
    fox

let test_posting_chunks_span_rows () =
  (* 200 occurrences exceed the 64-entry chunk size, so the posting list
     spans several B+tree rows; iteration must splice them seamlessly. *)
  let body = String.concat " " (List.init 200 (fun i -> Printf.sprintf "zz x%d" i)) in
  let env = Env.in_memory () in
  let summary = Summary.create Summary.Incoming in
  let index =
    Index.build ~env ~summary ~analyzer:Analyzer.exact
      (List.to_seq [ ("big.xml", "<a>" ^ body ^ "</a>") ])
  in
  let positions = collect_positions index "zz" in
  check Alcotest.int "all occurrences" 200 (List.length positions);
  let sorted = List.sort Types.compare_pos positions in
  check Alcotest.bool "ordered across chunks" true (positions = sorted)

let test_posting_iterator_unknown_term () =
  let _, _, index = build_index () in
  let it = Index.Posting_iter.create index "nonexistent" in
  check Alcotest.bool "immediately m-pos" true
    (Types.is_m_pos (Index.Posting_iter.next_position it));
  check Alcotest.bool "stays m-pos" true
    (Types.is_m_pos (Index.Posting_iter.next_position it))

(* ---- element iterator ---- *)

let test_element_iterator () =
  let _, summary, index = build_index () in
  let sid_b = Option.get (Summary.sid_of_path summary [ "a"; "b" ]) in
  let it = Index.Element_iter.create index sid_b in
  let first = Index.Element_iter.first_element it in
  Alcotest.(check bool) "has first" true (not (Types.is_dummy first));
  check Alcotest.int "first in doc 0" 0 first.Types.docid;
  (* Jump past the first element: lands on the second. *)
  let second =
    Index.Element_iter.next_element_after it
      { Types.docid = first.docid; offset = first.endpos }
  in
  Alcotest.(check bool) "second exists" true (not (Types.is_dummy second));
  Alcotest.(check bool) "strictly later" true
    (Types.compare_pos (Types.element_end first) (Types.element_end second) < 0);
  (* Past everything: dummy. *)
  let past = Index.Element_iter.next_element_after it { Types.docid = 99; offset = 0 } in
  Alcotest.(check bool) "dummy at end" true (Types.is_dummy past);
  (* m-pos in: dummy out. *)
  Alcotest.(check bool) "m-pos gives dummy" true
    (Types.is_dummy (Index.Element_iter.next_element_after it Types.m_pos))

let test_element_iterator_empty_extent () =
  let _, _, index = build_index () in
  let it = Index.Element_iter.create index 9999 in
  Alcotest.(check bool) "dummy first" true
    (Types.is_dummy (Index.Element_iter.first_element it))

(* ---- persistence ---- *)

let test_attach_roundtrip () =
  let dir = Filename.temp_file "trex_idx" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let env = Env.on_disk dir in
  let summary = Summary.create Summary.Incoming in
  let index = Index.build ~env ~summary ~analyzer:Analyzer.exact (List.to_seq docs) in
  let stats = Index.stats index in
  Env.close env;
  let env2 = Env.on_disk dir in
  let index2 = Index.attach env2 in
  check Alcotest.bool "stats survive" true (Index.stats index2 = stats);
  check Alcotest.int "summary survives"
    (Summary.node_count summary)
    (Summary.node_count (Index.summary index2));
  check Alcotest.bool "analyzer survives" true (Index.analyzer index2 = Analyzer.exact);
  let fox = collect_positions index2 "fox" in
  check Alcotest.int "postings readable" 4 (List.length fox);
  Env.close env2

let test_attach_empty_env_fails () =
  let env = Env.in_memory () in
  Alcotest.(check bool) "fails" true
    (try
       ignore (Index.attach env);
       false
     with Failure _ -> true)

let test_add_document () =
  let _, summary, index = build_index () in
  let before = Index.stats index in
  let docid, terms =
    Index.add_document index ~name:"three.xml"
      ~xml:"<a><b>red wolf</b><d>purple wolf wolf</d></a>"
  in
  check Alcotest.int "docid continues" 2 docid;
  check (Alcotest.list Alcotest.string) "doc terms" [ "purple"; "red"; "wolf" ] terms;
  let after = Index.stats index in
  check Alcotest.int "doc count" (before.doc_count + 1) after.doc_count;
  check Alcotest.int "elements" (before.element_count + 3) after.element_count;
  check Alcotest.int "postings" (before.posting_count + 5) after.posting_count;
  (* "purple" and "wolf" are new; "red" existed. *)
  check Alcotest.int "terms" (before.term_count + 2) after.term_count;
  (match Index.term_stats index "wolf" with
  | Some row ->
      check Alcotest.int "wolf df" 1 row.Tables.Terms.df;
      check Alcotest.int "wolf cf" 3 row.Tables.Terms.cf
  | None -> Alcotest.fail "wolf missing");
  (match Index.term_stats index "red" with
  | Some row -> check Alcotest.int "red df grows" 2 row.Tables.Terms.df
  | None -> Alcotest.fail "red missing");
  (* Postings of the new doc are reachable and positioned correctly. *)
  let wolf = collect_positions index "wolf" in
  check Alcotest.int "wolf occurrences" 3 (List.length wolf);
  List.iter
    (fun (p : Types.pos) -> check Alcotest.int "in new doc" docid p.docid)
    wolf;
  (* The summary grew: a/d is a new path. *)
  Alcotest.(check bool) "new extent" true
    (Summary.sid_of_path summary [ "a"; "d" ] <> None);
  (* Source retrievable. *)
  Alcotest.(check bool) "source stored" true (Index.source index docid <> None)

let test_add_document_persists () =
  let dir = Filename.temp_file "trex_add" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let env = Env.on_disk dir in
  let summary = Summary.create Summary.Incoming in
  let index = Index.build ~env ~summary ~analyzer:Analyzer.exact (List.to_seq docs) in
  ignore (Index.add_document index ~name:"n.xml" ~xml:"<a><b>zebra</b></a>");
  Env.close env;
  let env2 = Env.on_disk dir in
  let index2 = Index.attach env2 in
  check Alcotest.int "doc count persisted" 3 (Index.stats index2).doc_count;
  Alcotest.(check bool) "zebra searchable" true
    (Index.term_stats index2 "zebra" <> None);
  Env.close env2

let test_build_empty_corpus () =
  let env = Env.in_memory () in
  let summary = Summary.create Summary.Incoming in
  let index = Index.build ~env ~summary Seq.empty in
  let s = Index.stats index in
  check Alcotest.int "no docs" 0 s.doc_count;
  check Alcotest.int "no elements" 0 s.element_count

let () =
  Alcotest.run "trex_invindex"
    [
      ( "types",
        [
          Alcotest.test_case "pos order" `Quick test_pos_order;
          Alcotest.test_case "contains" `Quick test_element_contains;
          Alcotest.test_case "element containment" `Quick test_element_containment;
        ] );
      ( "tables",
        [
          Alcotest.test_case "elements codec" `Quick test_elements_codec_roundtrip;
          Alcotest.test_case "posting chunk codec" `Quick test_posting_chunk_roundtrip;
          Alcotest.test_case "empty chunk rejected" `Quick
            test_posting_chunk_empty_rejected;
        ] );
      ( "build",
        [
          Alcotest.test_case "stats" `Quick test_stats;
          Alcotest.test_case "term stats" `Quick test_term_stats;
          Alcotest.test_case "documents" `Quick test_documents;
          Alcotest.test_case "source and element text" `Quick
            test_source_and_element_text;
          Alcotest.test_case "extent elements ordered" `Quick
            test_extent_elements_ordered;
          Alcotest.test_case "empty corpus" `Quick test_build_empty_corpus;
        ] );
      ( "iterators",
        [
          Alcotest.test_case "posting iterator" `Quick test_posting_iterator;
          Alcotest.test_case "chunks span rows" `Quick test_posting_chunks_span_rows;
          Alcotest.test_case "unknown term" `Quick test_posting_iterator_unknown_term;
          Alcotest.test_case "element iterator" `Quick test_element_iterator;
          Alcotest.test_case "empty extent" `Quick test_element_iterator_empty_extent;
        ] );
      ( "persistence",
        [
          Alcotest.test_case "attach roundtrip" `Quick test_attach_roundtrip;
          Alcotest.test_case "attach empty env fails" `Quick
            test_attach_empty_env_fails;
          Alcotest.test_case "add document" `Quick test_add_document;
          Alcotest.test_case "add document persists" `Quick test_add_document_persists;
        ] );
    ]
