(* Tests for trex_text: Porter stemmer, stopwords, analyzer. *)

module Porter = Trex_text.Porter
module Stopwords = Trex_text.Stopwords
module Analyzer = Trex_text.Analyzer

let check = Alcotest.check

(* Reference pairs from Porter's published examples and the standard
   test vocabulary. *)
let porter_vectors =
  [
    ("caresses", "caress"); ("ponies", "poni"); ("ties", "ti"); ("caress", "caress");
    ("cats", "cat"); ("feed", "feed"); ("agreed", "agre"); ("plastered", "plaster");
    ("bled", "bled"); ("motoring", "motor"); ("sing", "sing"); ("conflated", "conflat");
    ("troubled", "troubl"); ("sized", "size"); ("hopping", "hop"); ("tanned", "tan");
    ("falling", "fall"); ("hissing", "hiss"); ("fizzed", "fizz"); ("failing", "fail");
    ("filing", "file"); ("happy", "happi"); ("sky", "sky"); ("relational", "relat");
    ("conditional", "condit"); ("rational", "ration"); ("valenci", "valenc");
    ("hesitanci", "hesit"); ("digitizer", "digit"); ("conformabli", "conform");
    ("radicalli", "radic"); ("differentli", "differ"); ("vileli", "vile");
    ("analogousli", "analog"); ("vietnamization", "vietnam"); ("predication", "predic");
    ("operator", "oper"); ("feudalism", "feudal"); ("decisiveness", "decis");
    ("hopefulness", "hope"); ("callousness", "callous"); ("formaliti", "formal");
    ("sensitiviti", "sensit"); ("sensibiliti", "sensibl"); ("triplicate", "triplic");
    ("formative", "form"); ("formalize", "formal"); ("electriciti", "electr");
    ("electrical", "electr"); ("hopeful", "hope"); ("goodness", "good");
    ("revival", "reviv"); ("allowance", "allow"); ("inference", "infer");
    ("airliner", "airlin"); ("gyroscopic", "gyroscop"); ("adjustable", "adjust");
    ("defensible", "defens"); ("irritant", "irrit"); ("replacement", "replac");
    ("adjustment", "adjust"); ("dependent", "depend"); ("adoption", "adopt");
    ("homologou", "homolog"); ("communism", "commun"); ("activate", "activ");
    ("angulariti", "angular"); ("homologous", "homolog"); ("effective", "effect");
    ("bowdlerize", "bowdler"); ("probate", "probat"); ("rate", "rate");
    ("cease", "ceas"); ("controll", "control"); ("roll", "roll");
    (* "ontologi", not "ontolog": we implement the 1980 paper, which
       lacks porter.c's later "logi"->"log" departure. *)
    ("retrieval", "retriev"); ("retrieving", "retriev"); ("ontologies", "ontologi");
    ("evaluation", "evalu"); ("information", "inform");
  ]

let test_porter_vectors () =
  List.iter
    (fun (input, expected) ->
      check Alcotest.string input expected (Porter.stem input))
    porter_vectors

let test_porter_short_words_unchanged () =
  List.iter
    (fun w -> check Alcotest.string w w (Porter.stem w))
    [ "a"; "is"; "be"; "to" ]

let test_porter_non_alpha_unchanged () =
  List.iter
    (fun w -> check Alcotest.string w w (Porter.stem w))
    [ "x86"; "foo-bar"; "Hello" ]

let test_porter_conflates_query_terms () =
  (* The pairs the retrieval pipeline relies on. *)
  check Alcotest.string "retrieval/retrieve" (Porter.stem "retrieval")
    (Porter.stem "retrieval");
  check Alcotest.string "evaluate ~ evaluation" (Porter.stem "evaluation")
    (Porter.stem "evaluations");
  check Alcotest.string "synthesizers ~ synthesizer" (Porter.stem "synthesizer")
    (Porter.stem "synthesizers")

let prop_porter_never_grows =
  QCheck.Test.make ~name:"stem never longer than input (+1 slack)" ~count:500
    QCheck.(string_gen_of_size Gen.(1 -- 20) Gen.(char_range 'a' 'z'))
    (fun w -> String.length (Porter.stem w) <= String.length w + 1)

let prop_porter_total =
  QCheck.Test.make ~name:"stem total on arbitrary strings" ~count:500
    QCheck.(string_of_size Gen.(0 -- 30))
    (fun w ->
      ignore (Porter.stem w);
      true)

(* ---- stopwords ---- *)

let test_stopwords_membership () =
  List.iter
    (fun w -> Alcotest.(check bool) w true (Stopwords.is_stopword w))
    [ "the"; "and"; "of"; "is"; "about" ];
  List.iter
    (fun w -> Alcotest.(check bool) w false (Stopwords.is_stopword w))
    [ "xml"; "retrieval"; "zebra" ]

let test_stopwords_all_sorted_unique () =
  let all = Stopwords.all () in
  Alcotest.(check bool) "non-empty" true (List.length all > 100);
  check
    (Alcotest.list Alcotest.string)
    "sorted unique" (List.sort_uniq String.compare all) all

(* ---- analyzer ---- *)

let test_tokenize_offsets () =
  let toks = Analyzer.tokenize Analyzer.exact "Foo bar, baz!" in
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "tokens with offsets"
    [ ("foo", 0); ("bar", 4); ("baz", 9) ]
    toks

let test_tokenize_base_offset () =
  let toks = Analyzer.tokenize Analyzer.exact ~base_offset:100 "ab cd" in
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "offsets shifted"
    [ ("ab", 100); ("cd", 103) ]
    toks

let test_default_pipeline_drops_stopwords_and_stems () =
  let terms = Analyzer.terms Analyzer.default "The evaluation of XML retrieval" in
  check
    (Alcotest.list Alcotest.string)
    "normalized" [ "evalu"; "xml"; "retriev" ] terms

let test_min_token_length () =
  let config = { Analyzer.exact with min_token_length = 3 } in
  check
    (Alcotest.list Alcotest.string)
    "short dropped" [ "abc"; "wxyz" ]
    (Analyzer.terms config "ab abc w wxyz")

let test_normalize () =
  check (Alcotest.option Alcotest.string) "stopword" None
    (Analyzer.normalize Analyzer.default "The");
  check (Alcotest.option Alcotest.string) "stemmed" (Some "retriev")
    (Analyzer.normalize Analyzer.default "Retrieval");
  check (Alcotest.option Alcotest.string) "exact keeps" (Some "the")
    (Analyzer.normalize Analyzer.exact "The")

let prop_tokens_point_into_source =
  QCheck.Test.make ~name:"token offsets point at their raw token" ~count:300
    QCheck.(string_of_size Gen.(0 -- 60))
    (fun s ->
      Analyzer.tokenize Analyzer.exact s
      |> List.for_all (fun (_, off) ->
             off >= 0 && off < String.length s
             &&
             match s.[off] with
             | 'A' .. 'Z' | 'a' .. 'z' | '0' .. '9' -> true
             | _ -> false))

let qtest = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "trex_text"
    [
      ( "porter",
        [
          Alcotest.test_case "reference vectors" `Quick test_porter_vectors;
          Alcotest.test_case "short words unchanged" `Quick
            test_porter_short_words_unchanged;
          Alcotest.test_case "non-alpha unchanged" `Quick test_porter_non_alpha_unchanged;
          Alcotest.test_case "conflates query terms" `Quick
            test_porter_conflates_query_terms;
          qtest prop_porter_never_grows;
          qtest prop_porter_total;
        ] );
      ( "stopwords",
        [
          Alcotest.test_case "membership" `Quick test_stopwords_membership;
          Alcotest.test_case "sorted unique" `Quick test_stopwords_all_sorted_unique;
        ] );
      ( "analyzer",
        [
          Alcotest.test_case "tokenize offsets" `Quick test_tokenize_offsets;
          Alcotest.test_case "base offset" `Quick test_tokenize_base_offset;
          Alcotest.test_case "default pipeline" `Quick
            test_default_pipeline_drops_stopwords_and_stems;
          Alcotest.test_case "min token length" `Quick test_min_token_length;
          Alcotest.test_case "normalize" `Quick test_normalize;
          qtest prop_tokens_point_into_source;
        ] );
    ]
