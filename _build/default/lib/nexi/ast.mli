(** Abstract syntax of NEXI (Narrowed Extended XPath I) retrieval
    queries: XPath steps narrowed to [/]//[//] axes and name or [*]
    tests, extended with the [about(path, keywords)] predicate. *)

type polarity =
  | Should  (** plain keyword *)
  | Must  (** [+keyword] *)
  | Must_not  (** [-keyword] *)

type keyword = {
  polarity : polarity;
  words : string list;  (** several words for a quoted phrase *)
}

type about = {
  rel : Trex_summary.Pattern.t;
      (** steps after the context dot; [[]] for [about(., ...)] *)
  keywords : keyword list;
}

type predicate = About of about | And of predicate * predicate | Or of predicate * predicate

type step = {
  axis : Trex_summary.Pattern.axis;
  test : string option;  (** [None] is [*] *)
  predicate : predicate option;
}

type query = step list

val structural_path : query -> Trex_summary.Pattern.t
(** The query's structural skeleton (steps without predicates) — the
    path whose extent holds the ranked answer elements. *)

val about_paths : query -> (Trex_summary.Pattern.t * keyword list) list
(** Every root-to-[about()] path with its keywords, in query order: the
    units the paper's translation phase maps to (sids, terms). The path
    of the about clause is the steps up to its host step followed by
    the clause's relative steps. *)

val to_string : query -> string
