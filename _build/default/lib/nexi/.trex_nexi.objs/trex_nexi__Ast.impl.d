lib/nexi/ast.ml: Buffer List Printf String Trex_summary
