lib/nexi/translate.ml: Ast Format Hashtbl List Printf String Trex_summary
