lib/nexi/parser.mli: Ast
