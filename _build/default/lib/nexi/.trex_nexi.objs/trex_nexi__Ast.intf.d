lib/nexi/ast.mli: Trex_summary
