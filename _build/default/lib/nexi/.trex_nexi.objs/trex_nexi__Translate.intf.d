lib/nexi/translate.mli: Ast Format Trex_summary
