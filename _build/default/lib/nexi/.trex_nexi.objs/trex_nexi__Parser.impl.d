lib/nexi/parser.ml: Ast List Printf String Trex_summary
