(** Recursive-descent parser for NEXI queries such as

    {v //article[about(., XML)]//sec[about(., query evaluation)]
//article[about(.//bdy, synthesizers) and about(.//bdy, music)]
//article//figure[about(., Renaissance painting -French)] v} *)

exception Syntax_error of { message : string; pos : int }

val parse : string -> Ast.query
(** @raise Syntax_error with the byte offset of the failure. *)
