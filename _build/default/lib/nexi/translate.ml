module Pattern = Trex_summary.Pattern
module Summary = Trex_summary.Summary

type unit_ = {
  pattern : Pattern.t;
  sids : int list;
  terms : string list;
  required_terms : string list;
  excluded_terms : string list;
  phrases : string list list;
}

type t = {
  query : Ast.query;
  units : unit_ list;
  target_pattern : Pattern.t;
  target_sids : int list;
}

let dedup_keep_order items =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun x ->
      if Hashtbl.mem seen x then false
      else begin
        Hashtbl.add seen x ();
        true
      end)
    items

let normalize_words normalize words = List.filter_map normalize words

let translate ~summary ~normalize query =
  let units =
    List.map
      (fun (pattern, keywords) ->
        let positive, negative =
          List.partition
            (fun (k : Ast.keyword) -> k.polarity <> Ast.Must_not)
            keywords
        in
        let terms =
          positive
          |> List.concat_map (fun (k : Ast.keyword) -> k.words)
          |> normalize_words normalize |> dedup_keep_order
        in
        let required_terms =
          positive
          |> List.filter (fun (k : Ast.keyword) -> k.polarity = Ast.Must)
          |> List.concat_map (fun (k : Ast.keyword) -> k.words)
          |> normalize_words normalize |> dedup_keep_order
        in
        let excluded_terms =
          negative
          |> List.concat_map (fun (k : Ast.keyword) -> k.words)
          |> normalize_words normalize |> dedup_keep_order
        in
        let phrases =
          positive
          |> List.filter_map (fun (k : Ast.keyword) ->
                 if List.length k.words >= 2 then
                   let ws = normalize_words normalize k.words in
                   if List.length ws >= 2 then Some ws else None
                 else None)
        in
        {
          pattern;
          sids = Summary.match_pattern summary pattern;
          terms;
          required_terms;
          excluded_terms;
          phrases;
        })
      (Ast.about_paths query)
  in
  let target_pattern = Ast.structural_path query in
  {
    query;
    units;
    target_pattern;
    target_sids = Summary.match_pattern summary target_pattern;
  }

let all_sids t =
  List.concat_map (fun u -> u.sids) t.units @ t.target_sids
  |> List.sort_uniq compare

let all_terms t = dedup_keep_order (List.concat_map (fun u -> u.terms) t.units)

let pp fmt t =
  Format.fprintf fmt "@[<v>query: %s@," (Ast.to_string t.query);
  List.iter
    (fun u ->
      Format.fprintf fmt "path %s: %d sids, terms [%s]%s@,"
        (Pattern.to_string u.pattern)
        (List.length u.sids)
        (String.concat "; " u.terms)
        (match u.excluded_terms with
        | [] -> ""
        | ex -> Printf.sprintf ", excluded [%s]" (String.concat "; " ex)))
    t.units;
  Format.fprintf fmt "target %s: %d sids@]"
    (Pattern.to_string t.target_pattern)
    (List.length t.target_sids)
