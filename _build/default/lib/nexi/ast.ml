module Pattern = Trex_summary.Pattern

type polarity = Should | Must | Must_not
type keyword = { polarity : polarity; words : string list }
type about = { rel : Pattern.t; keywords : keyword list }
type predicate = About of about | And of predicate * predicate | Or of predicate * predicate

type step = {
  axis : Pattern.axis;
  test : string option;
  predicate : predicate option;
}

type query = step list

let structural_path query =
  List.map (fun s -> { Pattern.axis = s.axis; test = s.test }) query

let rec abouts_of_predicate = function
  | About a -> [ a ]
  | And (l, r) | Or (l, r) -> abouts_of_predicate l @ abouts_of_predicate r

let about_paths query =
  let rec go prefix = function
    | [] -> []
    | step :: rest ->
        let prefix = prefix @ [ { Pattern.axis = step.axis; test = step.test } ] in
        let here =
          match step.predicate with
          | None -> []
          | Some p ->
              List.map
                (fun (a : about) -> (Pattern.append prefix a.rel, a.keywords))
                (abouts_of_predicate p)
        in
        here @ go prefix rest
  in
  go [] query

let keyword_to_string k =
  let prefix = match k.polarity with Should -> "" | Must -> "+" | Must_not -> "-" in
  match k.words with
  | [ w ] -> prefix ^ w
  | ws -> prefix ^ "\"" ^ String.concat " " ws ^ "\""

let rec predicate_to_string = function
  | About { rel; keywords } ->
      let path = if rel = [] then "." else "." ^ Pattern.to_string rel in
      Printf.sprintf "about(%s, %s)" path
        (String.concat " " (List.map keyword_to_string keywords))
  | And (l, r) ->
      Printf.sprintf "%s and %s" (predicate_to_string l) (predicate_to_string r)
  | Or (l, r) ->
      Printf.sprintf "%s or %s" (predicate_to_string l) (predicate_to_string r)

let to_string query =
  let b = Buffer.create 64 in
  List.iter
    (fun s ->
      Buffer.add_string b (match s.axis with Pattern.Child -> "/" | Pattern.Descendant -> "//");
      Buffer.add_string b (match s.test with None -> "*" | Some t -> t);
      match s.predicate with
      | None -> ()
      | Some p ->
          Buffer.add_char b '[';
          Buffer.add_string b (predicate_to_string p);
          Buffer.add_char b ']')
    query;
  Buffer.contents b
