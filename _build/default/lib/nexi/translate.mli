(** Translation phase (paper §3.1): map each root-to-[about()] path of
    a query to a set of summary ids and a set of normalized terms.

    The retrieval phase then works on (sids, terms) only — the paper's
    experiments use the union across paths, which {!all_sids} /
    {!all_terms} provide; the structured evaluator uses the per-path
    units. *)

type unit_ = {
  pattern : Trex_summary.Pattern.t;  (** root-to-about path *)
  sids : int list;  (** extents intersecting the path result *)
  terms : string list;  (** normalized positive keywords, deduplicated *)
  required_terms : string list;  (** normalized [+keyword]s (a subset of [terms]) *)
  excluded_terms : string list;  (** normalized [-keyword]s *)
  phrases : string list list;  (** normalized quoted phrases (≥ 2 words) *)
}

type t = {
  query : Ast.query;
  units : unit_ list;  (** in query order *)
  target_pattern : Trex_summary.Pattern.t;
  target_sids : int list;  (** extent of the answer elements *)
}

val translate :
  summary:Trex_summary.Summary.t -> normalize:(string -> string option) -> Ast.query -> t
(** [normalize] is the index's analyzer (query and corpus must agree);
    keywords it drops (stopwords, too short) vanish from the
    translation. *)

val all_sids : t -> int list
(** Sorted union over units and the target pattern. *)

val all_terms : t -> string list
(** Union over units, first-occurrence order. *)

val pp : Format.formatter -> t -> unit
