module Pattern = Trex_summary.Pattern

exception Syntax_error of { message : string; pos : int }

let fail pos fmt =
  Printf.ksprintf (fun message -> raise (Syntax_error { message; pos })) fmt

type state = { src : string; mutable pos : int }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let skip_spaces st =
  while
    st.pos < String.length st.src
    && (match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    st.pos <- st.pos + 1
  done

let looking_at st lit =
  let n = String.length lit in
  st.pos + n <= String.length st.src && String.sub st.src st.pos n = lit

let eat st lit =
  if looking_at st lit then st.pos <- st.pos + String.length lit
  else fail st.pos "expected %S" lit

let is_name_char = function
  | 'A' .. 'Z' | 'a' .. 'z' | '0' .. '9' | '_' | '-' | '.' | ':' -> true
  | _ -> false

let is_word_char = function
  | 'A' .. 'Z' | 'a' .. 'z' | '0' .. '9' | '_' | '\'' -> true
  | _ -> false

let read_test st =
  if looking_at st "*" then begin
    st.pos <- st.pos + 1;
    None
  end
  else begin
    let start = st.pos in
    while
      st.pos < String.length st.src
      && is_name_char st.src.[st.pos]
      && st.src.[st.pos] <> '.'
    do
      st.pos <- st.pos + 1
    done;
    if st.pos = start then fail st.pos "expected a tag name or *";
    Some (String.sub st.src start (st.pos - start))
  end

let read_axis st =
  if looking_at st "//" then begin
    st.pos <- st.pos + 2;
    Some Pattern.Descendant
  end
  else if looking_at st "/" then begin
    st.pos <- st.pos + 1;
    Some Pattern.Child
  end
  else None

(* Keyword list of an about(): words, +words, -words and quoted
   phrases, up to the closing parenthesis. *)
let read_keywords st =
  let keywords = ref [] in
  let finished = ref false in
  while not !finished do
    skip_spaces st;
    match peek st with
    | None -> fail st.pos "unterminated about(...)"
    | Some ')' -> finished := true
    | Some c ->
        let polarity =
          match c with
          | '+' ->
              st.pos <- st.pos + 1;
              Ast.Must
          | '-' ->
              st.pos <- st.pos + 1;
              Ast.Must_not
          | _ -> Ast.Should
        in
        (match peek st with
        | Some '"' ->
            st.pos <- st.pos + 1;
            let start = st.pos in
            (match String.index_from_opt st.src st.pos '"' with
            | Some close ->
                let phrase = String.sub st.src start (close - start) in
                st.pos <- close + 1;
                let words =
                  String.split_on_char ' ' phrase
                  |> List.filter (fun w -> w <> "")
                in
                if words = [] then fail start "empty phrase";
                keywords := { Ast.polarity; words } :: !keywords
            | None -> fail start "unterminated phrase")
        | Some c when is_word_char c ->
            let start = st.pos in
            while st.pos < String.length st.src && is_word_char st.src.[st.pos] do
              st.pos <- st.pos + 1
            done;
            let word = String.sub st.src start (st.pos - start) in
            keywords := { Ast.polarity; words = [ word ] } :: !keywords
        | _ -> fail st.pos "expected a keyword")
  done;
  let kws = List.rev !keywords in
  if kws = [] then fail st.pos "about() needs at least one keyword";
  kws

let read_rel_path st =
  eat st ".";
  let rec steps acc =
    match read_axis st with
    | None -> List.rev acc
    | Some axis ->
        let test = read_test st in
        steps ({ Pattern.axis; test } :: acc)
  in
  steps []

let rec read_about st =
  skip_spaces st;
  eat st "about";
  skip_spaces st;
  eat st "(";
  skip_spaces st;
  let rel = read_rel_path st in
  skip_spaces st;
  eat st ",";
  let keywords = read_keywords st in
  eat st ")";
  { Ast.rel; keywords }

and read_predicate st =
  let left = Ast.About (read_about st) in
  skip_spaces st;
  if looking_at st "and" then begin
    st.pos <- st.pos + 3;
    Ast.And (left, read_predicate st)
  end
  else if looking_at st "or" then begin
    st.pos <- st.pos + 2;
    Ast.Or (left, read_predicate st)
  end
  else left

let parse src =
  let st = { src; pos = 0 } in
  skip_spaces st;
  let rec steps acc =
    skip_spaces st;
    match read_axis st with
    | None ->
        if acc = [] then fail st.pos "query must start with / or //";
        List.rev acc
    | Some axis ->
        let test = read_test st in
        let predicate =
          skip_spaces st;
          if looking_at st "[" then begin
            eat st "[";
            let p = read_predicate st in
            skip_spaces st;
            eat st "]";
            Some p
          end
          else None
        in
        steps ({ Ast.axis; test; predicate } :: acc)
  in
  let q = steps [] in
  skip_spaces st;
  if st.pos <> String.length src then fail st.pos "trailing input";
  q
