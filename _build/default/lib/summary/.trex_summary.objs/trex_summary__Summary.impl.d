lib/summary/summary.ml: Alias Hashtbl Int List Pattern Printf Set String Trex_util Trex_xml
