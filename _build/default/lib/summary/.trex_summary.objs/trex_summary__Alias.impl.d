lib/summary/alias.ml: Hashtbl List Printf String
