lib/summary/summary.mli: Alias Pattern Trex_xml
