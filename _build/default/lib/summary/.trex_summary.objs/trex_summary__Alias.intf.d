lib/summary/alias.mli:
