lib/summary/pattern.mli: Alias
