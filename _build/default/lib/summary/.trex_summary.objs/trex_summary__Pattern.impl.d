lib/summary/pattern.ml: Alias Array Buffer Fun List String
