(** Structural summaries.

    A summary partitions the elements of a corpus into {e extents}; each
    extent is named by a summary id ({e sid}). Two criteria are
    implemented:

    - {e Tag}: elements with the same tag share an extent (185 / 145
      nodes for INEX IEEE without / with aliases);
    - {e Incoming}: elements with the same root-to-node label path share
      an extent (the dataguide-style summary TReX uses; 11 563 / 7 860
      nodes for INEX IEEE).

    Applying an {!Alias} mapping before summarization yields the alias
    variants. Summaries grow incrementally as documents are observed
    during indexing. *)

type criterion =
  | Tag
  | Incoming
  | A_k of int
      (** the A(k)-index criterion (Kaushik et al., cited in the
          paper): elements share an extent iff the last [k] labels of
          their incoming paths agree. [A_k 1] behaves like {!Tag};
          growing [k] converges to {!Incoming}. Structural matches are
          a sound over-approximation for deep extents. *)

type t

val create : ?alias:Alias.t -> criterion -> t
(** Empty summary. Sid 0 is reserved for the virtual root (it is not an
    extent); real sids start at 1. @raise Invalid_argument for
    [A_k k] with [k < 1]. *)

val criterion : t -> criterion
val alias : t -> Alias.t

val observe : t -> string list -> int
(** [observe t path] records one element whose root-to-node label path
    (root tag first, raw tags — aliasing happens inside) is [path],
    creating summary nodes as needed, bumping the extent size, and
    returning the element's sid. @raise Invalid_argument on an empty
    path. *)

val sid_of_path : t -> string list -> int option
(** Lookup without recording. *)

val node_count : t -> int
(** Number of extents (excluding the virtual root). *)

val extent_size : t -> int -> int
(** Elements observed in the extent of the given sid; 0 for unknown. *)

val label : t -> int -> string
(** Tag of the summary node (post-alias). @raise Invalid_argument on a
    bad sid. *)

val label_path : t -> int -> string list
(** Root-to-node label path of the summary node. For the Tag criterion
    this is the singleton tag; for A(k) it is the known suffix of the
    path (at most [k] labels, root-most first). *)

val xpath_of_sid : t -> int -> string
(** Human-readable XPath describing the extent, e.g.
    ["/books/journal/article"] (Incoming) or ["//sec"] (Tag). *)

val match_pattern : t -> Pattern.t -> int list
(** Sids whose extents can contain elements matching the pattern,
    sorted. For Incoming summaries the match is structural on the
    summary tree; a Tag summary retains no ancestry, so only the last
    step's node test is used; an A(k) summary matches exactly on
    shallow extents and via {!Pattern.matches_suffix} on depth-[k]
    ones (coarser sid sets — the price of the smaller summary). The
    pattern's tests are aliased with the summary's mapping first. *)

val sids : t -> int list
(** All sids, sorted. *)

val nesting_free : t -> bool
(** Whether no observed element was nested inside another element of
    the same extent — the property TReX requires of usable summaries.
    Incoming summaries always satisfy it; Tag summaries satisfy it only
    when no tag (post-alias) nests within itself. Tracked during
    {!observe_document}; paths observed directly are checked against
    their own prefixes. *)

val observe_document : t -> Trex_xml.Dom.doc -> (int * Trex_xml.Dom.element) list
(** Observe every element of a parsed document, returning
    document-order (sid, element) pairs. Also updates nesting-freedom
    tracking. *)

val to_string : t -> string
(** Binary serialization (criterion, alias, nodes, extent sizes). *)

val of_string : string -> t
(** @raise Failure on corrupt input. *)
