type axis = Child | Descendant
type step = { axis : axis; test : string option }
type t = step list

let parse src =
  let n = String.length src in
  if n = 0 then failwith "Pattern.parse: empty pattern";
  let steps = ref [] in
  let pos = ref 0 in
  if src.[0] <> '/' then failwith "Pattern.parse: pattern must start with / or //";
  while !pos < n do
    let axis =
      if !pos + 1 < n && src.[!pos] = '/' && src.[!pos + 1] = '/' then begin
        pos := !pos + 2;
        Descendant
      end
      else if src.[!pos] = '/' then begin
        incr pos;
        Child
      end
      else failwith "Pattern.parse: expected / between steps"
    in
    let start = !pos in
    while
      !pos < n
      &&
      match src.[!pos] with
      | 'A' .. 'Z' | 'a' .. 'z' | '0' .. '9' | '_' | '-' | '.' | '*' -> true
      | _ -> false
    do
      incr pos
    done;
    let name = String.sub src start (!pos - start) in
    if name = "" then failwith "Pattern.parse: empty step name";
    let test = if name = "*" then None else Some name in
    steps := { axis; test } :: !steps
  done;
  List.rev !steps

let to_string t =
  let b = Buffer.create 32 in
  List.iter
    (fun { axis; test } ->
      Buffer.add_string b (match axis with Child -> "/" | Descendant -> "//");
      Buffer.add_string b (match test with None -> "*" | Some tag -> tag))
    t;
  Buffer.contents b

let append a b = a @ b

let test_ok test label = match test with None -> true | Some tag -> tag = label

(* Shared matcher: remaining steps with the head step anchored at
   position [p]; the last step must land on the last position. *)
let rec steps_match steps path n p =
  match steps with
  | [] -> assert false
  | [ { test; _ } ] -> p = n - 1 && test_ok test path.(p)
  | { test; _ } :: ({ axis = next_axis; _ } :: _ as rest) ->
      test_ok test path.(p)
      &&
      (match next_axis with
      | Child -> p + 1 < n && steps_match rest path n (p + 1)
      | Descendant ->
          let rec try_pos p' =
            p' < n && (steps_match rest path n p' || try_pos (p' + 1))
          in
          try_pos (p + 1))

let matches_path t path =
  match (t, path) with
  | [], _ | _, [] -> false
  | { axis; _ } :: _, _ -> (
      let arr = Array.of_list path in
      let n = Array.length arr in
      match axis with
      | Child -> steps_match t arr n 0
      | Descendant ->
          let rec try_pos p = p < n && (steps_match t arr n p || try_pos (p + 1)) in
          try_pos 0)

let matches_suffix t suffix =
  match (t, suffix) with
  | [], _ | _, [] -> false
  | _ ->
      let arr = Array.of_list suffix in
      let n = Array.length arr in
      (* Drop a prefix of steps into the unknown labels above the
         suffix; the first retained step anchors at p0, which must be 0
         when its axis is Child (its parent would otherwise be a fixed
         suffix position no step matched). *)
      let rec try_drop steps =
        match steps with
        | [] -> false
        | { axis; _ } :: rest -> (
            let anchors =
              match axis with Child -> [ 0 ] | Descendant -> List.init n Fun.id
            in
            List.exists (fun p0 -> steps_match steps arr n p0) anchors
            || match rest with [] -> false | _ -> try_drop rest)
      in
      try_drop t

let apply_alias alias t =
  List.map
    (fun step ->
      match step.test with
      | None -> step
      | Some tag -> { step with test = Some (Alias.apply alias tag) })
    t
