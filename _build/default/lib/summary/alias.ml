type t = (string, string) Hashtbl.t

let identity : t = Hashtbl.create 1

let of_list pairs =
  let h = Hashtbl.create (List.length pairs) in
  List.iter
    (fun (syn, canon) ->
      match Hashtbl.find_opt h syn with
      | Some existing when existing <> canon ->
          invalid_arg
            (Printf.sprintf "Alias.of_list: %s maps to both %s and %s" syn
               existing canon)
      | Some _ -> ()
      | None -> Hashtbl.add h syn canon)
    pairs;
  h

let apply t tag = match Hashtbl.find_opt t tag with Some c -> c | None -> tag
let is_identity t = Hashtbl.length t = 0

let bindings t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
