(** Structural path patterns — the XPath fragment NEXI uses.

    A pattern is a sequence of steps, each an axis ([/] child or [//]
    descendant-or-self+child) and a node test (a tag or [*]). Patterns
    are matched against summary trees to produce sid sets. *)

type axis = Child | Descendant

type step = { axis : axis; test : string option (** [None] is [*] *) }

type t = step list

val parse : string -> t
(** Parse ["//article//sec"], ["/books/journal"], ["//bdy//*"]...
    @raise Failure on syntax errors (empty pattern, bad names). *)

val to_string : t -> string

val append : t -> t -> t
(** Concatenate: the second pattern is interpreted relative to matches
    of the first (NEXI's nested paths, e.g. [//article] then [//sec]). *)

val apply_alias : Alias.t -> t -> t
(** Rewrite node tests through an alias mapping so queries written with
    synonym tags hit alias summaries. *)

val matches_path : t -> string list -> bool
(** [matches_path pat path] — the pattern selects the last element of
    the absolute label path (root tag first). This is the reference
    semantics summaries approximate. *)

val matches_suffix : t -> string list -> bool
(** [matches_suffix pat suffix] — some absolute path {e ending with}
    [suffix] (arbitrary labels above it) is selected by the pattern.
    Used by A(k) summaries, which know only the last [k] labels of
    their extents' paths; a sound over-approximation of
    {!matches_path}. *)
