(** Tag alias mappings.

    INEX provides a mapping that collapses synonym tags (e.g. [ss1],
    [ss2] → [sec]); applying it before summarization yields the paper's
    "alias" summaries and realizes the vague interpretation of
    structural constraints. *)

type t

val identity : t
(** Maps every tag to itself. *)

val of_list : (string * string) list -> t
(** [of_list pairs] maps each [(synonym, canonical)]; unlisted tags map
    to themselves. Chains are not followed: the canonical side is used
    as given. @raise Invalid_argument on a duplicate synonym with a
    different canonical tag. *)

val apply : t -> string -> string
val is_identity : t -> bool
val bindings : t -> (string * string) list
(** Sorted by synonym. *)
