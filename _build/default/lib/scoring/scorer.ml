type config = Bm25 of { k1 : float; b : float } | Tf_idf

let default = Bm25 { k1 = 1.2; b = 0.75 }

type corpus = { doc_count : int; avg_element_length : float }

let idf ~doc_count ~df =
  let n = float_of_int (max doc_count 1) in
  let df = float_of_int (max df 0) in
  log (1.0 +. ((n -. df +. 0.5) /. (df +. 0.5)))

let score config ~corpus ~df ~tf ~element_length =
  if tf <= 0 then 0.0
  else begin
    let tf = float_of_int tf in
    let idf = idf ~doc_count:corpus.doc_count ~df in
    let len = float_of_int (max element_length 1) in
    let avg = Float.max corpus.avg_element_length 1.0 in
    match config with
    | Bm25 { k1; b } ->
        let norm = k1 *. ((1.0 -. b) +. (b *. (len /. avg))) in
        idf *. (tf *. (k1 +. 1.0) /. (tf +. norm))
    | Tf_idf -> idf *. (1.0 +. log tf) /. (1.0 +. log (len /. avg +. 1.0))
  end

let combine scores = List.fold_left ( +. ) 0.0 scores

let pp_config fmt = function
  | Bm25 { k1; b } -> Format.fprintf fmt "BM25(k1=%.2f,b=%.2f)" k1 b
  | Tf_idf -> Format.pp_print_string fmt "TF-IDF"
