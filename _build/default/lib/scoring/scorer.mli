(** Element relevance scoring.

    The paper delegates content scoring to "well-established IR
    techniques"; we provide the two classics. Scores are per (element,
    term) — exactly what an RPL entry stores — and multi-term relevance
    is their {e sum}, a monotone aggregate as the threshold algorithm
    requires. *)

type config =
  | Bm25 of { k1 : float; b : float }
      (** Okapi BM25 with element-length normalization. *)
  | Tf_idf  (** log-scaled tf times idf, length-normalized. *)

val default : config
(** BM25 with [k1 = 1.2], [b = 0.75]. *)

type corpus = {
  doc_count : int;
  avg_element_length : float;  (** in bytes, as the index measures it *)
}

val idf : doc_count:int -> df:int -> float
(** [log (1 + (N - df + 0.5) / (df + 0.5))]; non-negative, decreasing
    in [df]. *)

val score : config -> corpus:corpus -> df:int -> tf:int -> element_length:int -> float
(** Relevance of one element for one term. Zero when [tf = 0];
    monotonically increasing in [tf]. *)

val combine : float list -> float
(** Summation — the monotone aggregate used by TA, Merge and ERA. *)

val pp_config : Format.formatter -> config -> unit
