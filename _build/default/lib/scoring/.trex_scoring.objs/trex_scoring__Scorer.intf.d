lib/scoring/scorer.mli: Format
