lib/scoring/scorer.ml: Float Format List
