let key_of_int n =
  (* Flip the sign bit so that negative ints sort below positive ones
     under unsigned byte comparison. *)
  let u = Int64.logxor (Int64.of_int n) Int64.min_int in
  let b = Bytes.create 8 in
  Bytes.set_int64_be b 0 u;
  Bytes.unsafe_to_string b

let int_of_key s ~pos =
  if pos + 8 > String.length s then invalid_arg "Codec.int_of_key";
  let u = String.get_int64_be s pos in
  (Int64.to_int (Int64.logxor u Int64.min_int), pos + 8)

let key_of_float f =
  let bits = Int64.bits_of_float f in
  (* Positive floats: set the sign bit; negative floats: flip all bits.
     Standard order-preserving IEEE-754 transform. *)
  let u =
    if Int64.compare bits 0L >= 0 then Int64.logxor bits Int64.min_int
    else Int64.lognot bits
  in
  let b = Bytes.create 8 in
  Bytes.set_int64_be b 0 u;
  Bytes.unsafe_to_string b

let float_of_key s ~pos =
  if pos + 8 > String.length s then invalid_arg "Codec.float_of_key";
  let u = String.get_int64_be s pos in
  let bits =
    if Int64.compare u 0L < 0 then Int64.logxor u Int64.min_int
    else Int64.lognot u
  in
  (Int64.float_of_bits bits, pos + 8)

let key_of_string s =
  let n = String.length s in
  let b = Buffer.create (n + 2) in
  for i = 0 to n - 1 do
    match s.[i] with
    | '\x00' ->
        (* Escape NUL as 0x00 0xFF so the 0x00 0x01 terminator stays
           prefix-free. *)
        Buffer.add_char b '\x00';
        Buffer.add_char b '\xff'
    | c -> Buffer.add_char b c
  done;
  Buffer.add_char b '\x00';
  Buffer.add_char b '\x01';
  Buffer.contents b

let string_of_key s ~pos =
  let b = Buffer.create 16 in
  let n = String.length s in
  let rec loop i =
    if i >= n then invalid_arg "Codec.string_of_key: unterminated"
    else
      match s.[i] with
      | '\x00' ->
          if i + 1 >= n then invalid_arg "Codec.string_of_key: truncated"
          else if s.[i + 1] = '\x01' then i + 2
          else if s.[i + 1] = '\xff' then (
            Buffer.add_char b '\x00';
            loop (i + 2))
          else invalid_arg "Codec.string_of_key: bad escape"
      | c ->
          Buffer.add_char b c;
          loop (i + 1)
  in
  let next = loop pos in
  (Buffer.contents b, next)

let concat_keys = String.concat ""

module Buf = struct
  type t = Buffer.t

  let create ?(capacity = 64) () = Buffer.create capacity
  let contents = Buffer.contents

  (* Zig-zag LEB128: small magnitudes of either sign stay short. The
     zig-zagged value is treated as an unsigned 63-bit pattern ([lsr]
     shifts in zeroes), so the full int range round-trips. *)
  let add_varint b n =
    let z = (n lsl 1) lxor (n asr 62) in
    let rec go z =
      let low = z land 0x7f in
      let rest = z lsr 7 in
      if rest = 0 then Buffer.add_char b (Char.chr low)
      else (
        Buffer.add_char b (Char.chr (low lor 0x80));
        go rest)
    in
    go z

  let add_int64_le b i =
    let tmp = Bytes.create 8 in
    Bytes.set_int64_le tmp 0 i;
    Buffer.add_bytes b tmp

  let add_float b f = add_int64_le b (Int64.bits_of_float f)

  let add_string b s =
    add_varint b (String.length s);
    Buffer.add_string b s

  let add_raw b s = Buffer.add_string b s
end

module Reader = struct
  type t = { s : string; mutable pos : int }

  exception Truncated

  let of_string s = { s; pos = 0 }
  let pos r = r.pos
  let at_end r = r.pos >= String.length r.s

  let byte r =
    if r.pos >= String.length r.s then raise Truncated;
    let c = Char.code r.s.[r.pos] in
    r.pos <- r.pos + 1;
    c

  let varint r =
    let rec go shift acc =
      let c = byte r in
      let acc = acc lor ((c land 0x7f) lsl shift) in
      if c land 0x80 <> 0 then go (shift + 7) acc else acc
    in
    let z = go 0 0 in
    (z lsr 1) lxor (-(z land 1))

  let int64_le r =
    if r.pos + 8 > String.length r.s then raise Truncated;
    let v = String.get_int64_le r.s r.pos in
    r.pos <- r.pos + 8;
    v

  let float r = Int64.float_of_bits (int64_le r)

  let raw r n =
    if r.pos + n > String.length r.s then raise Truncated;
    let v = String.sub r.s r.pos n in
    r.pos <- r.pos + n;
    v

  let string r =
    let n = varint r in
    if n < 0 then raise Truncated;
    raw r n
end
