(** Binary heaps.

    TA maintains two heaps: a min-heap of the current top-k candidates
    (keyed by combined score) and bookkeeping for the threshold. The
    heap also exposes the operation count so the self-management layer
    and ITA measurements can reason about heap cost. *)

module Make (Ord : sig
  type t

  val compare : t -> t -> int
end) : sig
  type t

  val create : unit -> t
  val length : t -> int
  val is_empty : t -> bool

  val push : t -> Ord.t -> unit
  val peek : t -> Ord.t option
  val pop : t -> Ord.t option
  (** Remove and return the minimum element. *)

  val push_pop : t -> Ord.t -> Ord.t
  (** [push_pop t x] pushes [x] then pops the minimum; more efficient
      than the two calls and never changes the size. *)

  val to_sorted_list : t -> Ord.t list
  (** Ascending order; destroys the heap. *)

  val operations : t -> int
  (** Total number of sift operations performed, a machine-independent
      proxy for heap-management cost. *)
end
