(** Deterministic pseudo-random number generator (splitmix64).

    The corpus generators and property tests need reproducible streams
    that are independent of the stdlib [Random] state. *)

type t

val create : int -> t
(** [create seed] starts a stream; equal seeds give equal streams. *)

val copy : t -> t
val next_int64 : t -> int64
val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. @raise Invalid_argument
    if [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val split : t -> t
(** A fresh stream seeded from [t]; advancing either afterwards does not
    affect the other. *)
