(** Binary codecs.

    Two families are provided:

    - {e order-preserving} key encodings, used by the storage layer so
      that lexicographic comparison of encoded keys matches the natural
      ordering of the decoded values (composite keys compare
      field-by-field);
    - plain {e value} encodings (varints, length-prefixed strings) used
      for row payloads where ordering does not matter. *)

(** {1 Order-preserving key encoding} *)

val key_of_int : int -> string
(** [key_of_int n] is an 8-byte big-endian encoding of [n] with the sign
    bit flipped, so that [compare (key_of_int a) (key_of_int b)] equals
    [compare a b] for all ints. *)

val int_of_key : string -> pos:int -> int * int
(** [int_of_key s ~pos] decodes an int written by {!key_of_int} at
    offset [pos] and returns it with the offset past the field.
    @raise Invalid_argument if fewer than 8 bytes remain. *)

val key_of_float : float -> string
(** Order-preserving encoding of a finite float (IEEE bits, sign
    massaged so that numeric order matches byte order). *)

val float_of_key : string -> pos:int -> float * int

val key_of_string : string -> string
(** [key_of_string s] escapes NUL bytes and appends a [0x00 0x01]
    terminator so that concatenated composite keys never compare a field
    against the next field's bytes. Prefix-free and order-preserving. *)

val string_of_key : string -> pos:int -> string * int

val concat_keys : string list -> string
(** Concatenate already-encoded key fields into one composite key. *)

(** {1 Value (payload) encoding} *)

module Buf : sig
  type t

  val create : ?capacity:int -> unit -> t
  val contents : t -> string
  val add_varint : t -> int -> unit
  val add_int64_le : t -> int64 -> unit
  val add_float : t -> float -> unit
  val add_string : t -> string -> unit

  (** Length-prefixed. *)

  val add_raw : t -> string -> unit
  (** No length prefix. *)
end

module Reader : sig
  type t

  val of_string : string -> t
  val pos : t -> int
  val at_end : t -> bool
  val varint : t -> int
  val int64_le : t -> int64
  val float : t -> float
  val string : t -> string
  val raw : t -> int -> string

  exception Truncated
end
