lib/util/stopclock.mli:
