lib/util/heap.mli:
