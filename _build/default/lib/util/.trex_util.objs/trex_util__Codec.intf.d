lib/util/codec.mli:
