lib/util/stopclock.ml: Unix
