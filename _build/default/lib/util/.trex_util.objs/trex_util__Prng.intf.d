lib/util/prng.mli:
