type t = { cdf : float array }

let create ?(exponent = 1.0) n =
  if n <= 0 then invalid_arg "Zipf.create";
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  for r = 0 to n - 1 do
    acc := !acc +. (1.0 /. Float.pow (float_of_int (r + 1)) exponent);
    cdf.(r) <- !acc
  done;
  let total = !acc in
  for r = 0 to n - 1 do
    cdf.(r) <- cdf.(r) /. total
  done;
  { cdf }

let size t = Array.length t.cdf

let sample t rng =
  let u = Prng.float rng 1.0 in
  (* Binary search for the first rank whose cumulative mass exceeds u. *)
  let lo = ref 0 and hi = ref (Array.length t.cdf - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cdf.(mid) < u then lo := mid + 1 else hi := mid
  done;
  !lo

let expected_frequency t r =
  if r = 0 then t.cdf.(0) else t.cdf.(r) -. t.cdf.(r - 1)
