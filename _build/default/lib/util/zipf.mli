(** Zipf-distributed sampling over ranks [0 .. n-1].

    Term frequencies in text follow a Zipf law; the synthetic corpora
    use this sampler so that posting-list lengths exhibit the same skew
    that drives the paper's experimental crossovers. *)

type t

val create : ?exponent:float -> int -> t
(** [create ~exponent n] prepares a sampler over [n] ranks with
    probability of rank [r] proportional to [1 / (r+1)^exponent].
    Default exponent is [1.0]. @raise Invalid_argument if [n <= 0]. *)

val size : t -> int
val sample : t -> Prng.t -> int
(** Draw a rank; rank 0 is the most frequent. *)

val expected_frequency : t -> int -> float
(** [expected_frequency t r] is the probability mass of rank [r]. *)
