lib/topk/rpl.mli: Trex_invindex Trex_scoring
