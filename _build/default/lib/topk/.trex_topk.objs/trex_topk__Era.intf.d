lib/topk/era.mli: Answer Trex_invindex Trex_scoring
