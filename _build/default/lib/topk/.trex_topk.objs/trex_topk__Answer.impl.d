lib/topk/answer.ml: Float Format List Trex_invindex
