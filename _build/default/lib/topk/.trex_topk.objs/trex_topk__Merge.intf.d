lib/topk/merge.mli: Answer Trex_invindex
