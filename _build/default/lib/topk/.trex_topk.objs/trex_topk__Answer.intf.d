lib/topk/answer.mli: Format Trex_invindex
