lib/topk/rpl.ml: Array Era Float Hashtbl List String Trex_invindex Trex_storage Trex_summary Trex_util
