lib/topk/era.ml: Answer Array List Trex_invindex Trex_scoring
