lib/topk/ta.ml: Answer Array Hashtbl List Rpl Trex_invindex Trex_util
