lib/topk/ta.mli: Answer Trex_invindex
