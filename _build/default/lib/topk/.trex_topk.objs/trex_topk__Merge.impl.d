lib/topk/merge.ml: Answer Array List Rpl Trex_invindex Trex_util
