lib/topk/strategy.ml: Answer Era List Merge Printf Rpl Ta Trex_util
