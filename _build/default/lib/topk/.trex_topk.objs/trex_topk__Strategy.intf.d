lib/topk/strategy.mli: Answer Trex_invindex Trex_scoring
