(** The Merge algorithm over ERPLs (paper Figure 3).

    One position-ordered cursor per query term; elements arriving at the
    same document position have their per-term scores summed; the merged
    vector is then sorted by score. Computes {e all} answers in one
    sequential pass — no per-entry heap bookkeeping, which is exactly
    why it beats TA once TA must read most of its lists anyway.
    Requires the ERPLs of every (term, sid) pair of the query. *)

type stats = {
  entries_read : int;  (** ERPL entries consumed across all terms *)
  elements_merged : int;  (** distinct elements in the merged vector *)
  elapsed_seconds : float;
}

val run :
  Trex_invindex.Index.t ->
  sids:int list ->
  terms:string list ->
  Answer.t * stats
(** All answers, descending score.
    @raise Rpl.Cursor.Missing_list when a required ERPL is absent.
    @raise Invalid_argument when [terms] is empty. *)
