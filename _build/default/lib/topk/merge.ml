module Types = Trex_invindex.Types
module Stopclock = Trex_util.Stopclock

type stats = {
  entries_read : int;
  elements_merged : int;
  elapsed_seconds : float;
}

let run index ~sids ~terms =
  if terms = [] then invalid_arg "Merge.run: no terms";
  let clock = Stopclock.create () in
  let n = List.length terms in
  let cursors =
    Array.of_list
      (List.map (fun term -> Rpl.Cursor.create index Rpl.Erpl ~term ~sids) terms)
  in
  let current = Array.map Rpl.Cursor.next cursors in
  let merged = ref [] in
  let merged_count = ref 0 in
  let position (e : Rpl.entry) = (e.element.Types.docid, e.element.Types.endpos) in
  let running = ref true in
  while !running do
    (* Find the minimal position among the current heads. *)
    let min_pos = ref None in
    Array.iter
      (fun c ->
        match c with
        | None -> ()
        | Some e -> (
            let p = position e in
            match !min_pos with
            | None -> min_pos := Some p
            | Some q -> if p < q then min_pos := Some p))
      current;
    match !min_pos with
    | None -> running := false
    | Some p ->
        let score = ref 0.0 in
        let element = ref None in
        for i = 0 to n - 1 do
          match current.(i) with
          | Some e when position e = p ->
              score := !score +. e.score;
              element := Some e.element;
              current.(i) <- Rpl.Cursor.next cursors.(i)
          | Some _ | None -> ()
        done;
        (match !element with
        | Some el ->
            incr merged_count;
            merged := (el, !score) :: !merged
        | None -> assert false)
  done;
  (* The paper sorts V with QuickSort; Answer.of_unsorted is our
     equivalent (List.sort, descending score). *)
  let answers = Answer.of_unsorted !merged in
  let entries_read =
    Array.fold_left (fun acc c -> acc + Rpl.Cursor.entries_read c) 0 cursors
  in
  ( answers,
    {
      entries_read;
      elements_merged = !merged_count;
      elapsed_seconds = Stopclock.elapsed clock;
    } )
