type config = {
  fold_case : bool;
  strip_stopwords : bool;
  stem : bool;
  min_token_length : int;
}

let default =
  { fold_case = true; strip_stopwords = true; stem = true; min_token_length = 2 }

let exact =
  { fold_case = true; strip_stopwords = false; stem = false; min_token_length = 1 }

let is_word_char = function 'A' .. 'Z' | 'a' .. 'z' | '0' .. '9' -> true | _ -> false

let fold_case s = String.lowercase_ascii s

let normalize config raw =
  let tok = if config.fold_case then fold_case raw else raw in
  if String.length tok < config.min_token_length then None
  else if config.strip_stopwords && Stopwords.is_stopword tok then None
  else Some (if config.stem then Porter.stem tok else tok)

let tokenize config ?(base_offset = 0) text =
  let n = String.length text in
  let out = ref [] in
  let i = ref 0 in
  while !i < n do
    if is_word_char text.[!i] then begin
      let start = !i in
      while !i < n && is_word_char text.[!i] do
        incr i
      done;
      let raw = String.sub text start (!i - start) in
      match normalize config raw with
      | Some term -> out := (term, base_offset + start) :: !out
      | None -> ()
    end
    else incr i
  done;
  List.rev !out

let terms config text = List.map fst (tokenize config text)
