(** Text analysis pipeline: tokenization and term normalization.

    Documents and queries must be analyzed with the {e same} pipeline,
    otherwise query terms never match postings; every index stores the
    configuration it was built with. *)

type config = {
  fold_case : bool;  (** lowercase ASCII letters *)
  strip_stopwords : bool;
  stem : bool;  (** apply {!Porter.stem} *)
  min_token_length : int;  (** drop shorter tokens (applied pre-stem) *)
}

val default : config
(** [fold_case], [strip_stopwords], [stem] on; [min_token_length = 2]. *)

val exact : config
(** Fold case only — useful in tests where stems would obscure
    expectations. *)

val normalize : config -> string -> string option
(** Normalize one raw token; [None] when the pipeline drops it. *)

val tokenize : config -> ?base_offset:int -> string -> (string * int) list
(** Split text into word tokens (letter/digit runs; embedded
    apostrophes and hyphens split tokens), normalize each, and return
    surviving terms with the byte offset of the raw token start,
    shifted by [base_offset] (default 0). *)

val terms : config -> string -> string list
(** {!tokenize} without offsets. *)
