lib/text/stopwords.mli:
