lib/text/porter.mli:
