lib/text/analyzer.ml: List Porter Stopwords String
