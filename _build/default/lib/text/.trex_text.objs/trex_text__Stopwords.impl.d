lib/text/stopwords.ml: Array Hashtbl Lazy List String
