lib/text/porter.ml: Bytes List String
