lib/text/analyzer.mli:
