(* Porter's algorithm as specified in "An algorithm for suffix
   stripping" (Program 14(3), 1980). The word is processed as a mutable
   buffer [b] with logical end [k]; helper predicates follow the paper's
   naming (cons, m, vowelinstem, doublec, cvc). *)

type state = { b : Bytes.t; mutable k : int (* index of last char *) }

(* y after a consonant is a vowel, y after a vowel is a consonant. *)
let rec is_consonant st i =
  match Bytes.get st.b i with
  | 'a' | 'e' | 'i' | 'o' | 'u' -> false
  | 'y' -> if i = 0 then true else not (is_consonant st (i - 1))
  | _ -> true

(* Measure: the number of VC sequences in [0..j], i.e. m in the paper's
   [C](VC)^m[V] decomposition of the stem. *)
let measure st j =
  let rec skip_consonants i =
    if i > j then i else if is_consonant st i then skip_consonants (i + 1) else i
  in
  let rec skip_vowels i =
    if i > j then i else if is_consonant st i then i else skip_vowels (i + 1)
  in
  let rec count i n =
    if i > j then n
    else
      let i = skip_vowels i in
      if i > j then n
      else count (skip_consonants i) (n + 1)
  in
  count (skip_consonants 0) 0

let vowel_in_stem st j =
  let found = ref false in
  for i = 0 to j do
    if not (is_consonant st i) then found := true
  done;
  !found

let double_consonant st j =
  j >= 1
  && Bytes.get st.b j = Bytes.get st.b (j - 1)
  && is_consonant st j

(* cvc(i) is true when i-2..i is consonant-vowel-consonant and the last
   consonant is not w, x or y; used to restore a final e (cav(e) etc.) *)
let cvc st i =
  i >= 2
  && is_consonant st i
  && (not (is_consonant st (i - 1)))
  && is_consonant st (i - 2)
  &&
  match Bytes.get st.b i with 'w' | 'x' | 'y' -> false | _ -> true

let ends st suffix =
  let ls = String.length suffix in
  let start = st.k - ls + 1 in
  start >= 0
  && Bytes.sub_string st.b start ls = suffix

let set_to st j suffix =
  (* Replace the suffix ending at [st.k] whose stem ends at [j] with
     [suffix]. *)
  Bytes.blit_string suffix 0 st.b (j + 1) (String.length suffix);
  st.k <- j + String.length suffix

let replace_if_m_gt_0 st suffix replacement =
  if ends st suffix then begin
    let j = st.k - String.length suffix in
    if measure st j > 0 then begin
      set_to st j replacement;
      true
    end
    else true (* matched but not replaced: stop trying other suffixes *)
  end
  else false

(* Step 1a: plurals. *)
let step1a st =
  if ends st "sses" then st.k <- st.k - 2
  else if ends st "ies" then set_to st (st.k - 3) "i"
  else if ends st "ss" then ()
  else if ends st "s" then st.k <- st.k - 1

(* Step 1b: -ed, -ing. *)
let step1b st =
  let second_pass = ref false in
  if ends st "eed" then begin
    if measure st (st.k - 3) > 0 then st.k <- st.k - 1
  end
  else if ends st "ed" && vowel_in_stem st (st.k - 2) then begin
    st.k <- st.k - 2;
    second_pass := true
  end
  else if ends st "ing" && vowel_in_stem st (st.k - 3) then begin
    st.k <- st.k - 3;
    second_pass := true
  end;
  if !second_pass then begin
    if ends st "at" then set_to st (st.k - 2) "ate"
    else if ends st "bl" then set_to st (st.k - 2) "ble"
    else if ends st "iz" then set_to st (st.k - 2) "ize"
    else if double_consonant st st.k then begin
      match Bytes.get st.b st.k with
      | 'l' | 's' | 'z' -> ()
      | _ -> st.k <- st.k - 1
    end
    else if measure st st.k = 1 && cvc st st.k then begin
      st.k <- st.k + 1;
      Bytes.set st.b st.k 'e'
    end
  end

(* Step 1c: terminal y -> i when there is a vowel in the stem. *)
let step1c st =
  if ends st "y" && vowel_in_stem st (st.k - 1) then Bytes.set st.b st.k 'i'

let step2_pairs =
  [
    ("ational", "ate"); ("tional", "tion"); ("enci", "ence"); ("anci", "ance");
    ("izer", "ize"); ("abli", "able"); ("alli", "al"); ("entli", "ent");
    ("eli", "e"); ("ousli", "ous"); ("ization", "ize"); ("ation", "ate");
    ("ator", "ate"); ("alism", "al"); ("iveness", "ive"); ("fulness", "ful");
    ("ousness", "ous"); ("aliti", "al"); ("iviti", "ive"); ("biliti", "ble");
  ]

let step3_pairs =
  [
    ("icate", "ic"); ("ative", ""); ("alize", "al"); ("iciti", "ic");
    ("ical", "ic"); ("ful", ""); ("ness", "");
  ]

let apply_pairs st pairs =
  ignore (List.exists (fun (s, r) -> replace_if_m_gt_0 st s r) pairs)

let step4 st =
  let try_suffix s =
    if ends st s then begin
      let j = st.k - String.length s in
      if measure st j > 1 then st.k <- j;
      true
    end
    else false
  in
  (* -ion only drops after s or t; other suffixes drop whenever m > 1.
     Order matters: longer suffixes shadow their shorter tails. *)
  let try_ion () =
    if ends st "ion" then begin
      let j = st.k - 3 in
      if j >= 0 && (Bytes.get st.b j = 's' || Bytes.get st.b j = 't') && measure st j > 1
      then st.k <- j;
      true
    end
    else false
  in
  ignore
    (List.exists try_suffix
       [ "al"; "ance"; "ence"; "er"; "ic"; "able"; "ible"; "ant"; "ement"; "ment"; "ent" ]
    || try_ion ()
    || List.exists try_suffix [ "ou"; "ism"; "ate"; "iti"; "ous"; "ive"; "ize" ])

(* Step 5a: remove final e when m > 1, or m = 1 and not cvc. *)
let step5a st =
  if ends st "e" then begin
    let j = st.k - 1 in
    let m = measure st j in
    if m > 1 || (m = 1 && not (cvc st j)) then st.k <- st.k - 1
  end

(* Step 5b: -ll -> -l when m > 1. *)
let step5b st =
  if Bytes.get st.b st.k = 'l' && double_consonant st st.k && measure st (st.k - 1) > 1
  then st.k <- st.k - 1

let stem word =
  let n = String.length word in
  if n <= 2 then word
  else if not (String.for_all (function 'a' .. 'z' -> true | _ -> false) word)
  then word
  else begin
    (* Slack for step1b's possible +1 'e'. *)
    let st = { b = Bytes.make (n + 1) '\x00'; k = n - 1 } in
    Bytes.blit_string word 0 st.b 0 n;
    step1a st;
    if st.k >= 1 then begin
      step1b st;
      step1c st;
      apply_pairs st step2_pairs;
      apply_pairs st step3_pairs;
      step4 st;
      step5a st;
      step5b st
    end;
    Bytes.sub_string st.b 0 (st.k + 1)
  end
