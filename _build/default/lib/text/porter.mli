(** Porter stemming algorithm (M. F. Porter, 1980).

    Conflates English inflections ("retrieval", "retrieve",
    "retrieving" → "retriev") so that query terms match document terms
    the way INEX-era IR systems did. Input must already be lowercase
    ASCII; other strings are returned unchanged where rules do not
    apply. *)

val stem : string -> string
