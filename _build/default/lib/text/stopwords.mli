(** English stopword list (the classic van Rijsbergen-style list used by
    INEX-era retrieval systems). *)

val is_stopword : string -> bool
(** Membership test on a lowercase token, before stemming. *)

val all : unit -> string list
(** The list, sorted. *)
