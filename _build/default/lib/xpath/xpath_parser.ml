open Xpath_ast

exception Syntax_error of { message : string; pos : int }

let fail pos fmt = Printf.ksprintf (fun message -> raise (Syntax_error { message; pos })) fmt

type state = { src : string; mutable pos : int }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let skip_spaces st =
  while
    st.pos < String.length st.src
    && (match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    st.pos <- st.pos + 1
  done

let looking_at st lit =
  let n = String.length lit in
  st.pos + n <= String.length st.src && String.sub st.src st.pos n = lit

let eat st lit =
  if looking_at st lit then st.pos <- st.pos + String.length lit
  else fail st.pos "expected %S" lit

(* A word boundary check so "android" is not read as "and". *)
let looking_at_word st word =
  looking_at st word
  &&
  let after = st.pos + String.length word in
  after >= String.length st.src
  ||
  match st.src.[after] with
  | 'A' .. 'Z' | 'a' .. 'z' | '0' .. '9' | '_' | '-' -> false
  | _ -> true

let is_name_start = function 'A' .. 'Z' | 'a' .. 'z' | '_' -> true | _ -> false

let is_name_char c =
  is_name_start c || (match c with '0' .. '9' | '-' | '.' -> true | _ -> false)

let read_name st =
  let start = st.pos in
  (match peek st with
  | Some c when is_name_start c -> st.pos <- st.pos + 1
  | _ -> fail st.pos "expected a name");
  while st.pos < String.length st.src && is_name_char st.src.[st.pos] do
    st.pos <- st.pos + 1
  done;
  String.sub st.src start (st.pos - start)

let axis_of_name pos = function
  | "child" -> Child
  | "descendant" -> Descendant
  | "descendant-or-self" -> Descendant_or_self
  | "self" -> Self
  | "parent" -> Parent
  | "ancestor" -> Ancestor
  | "following-sibling" -> Following_sibling
  | "preceding-sibling" -> Preceding_sibling
  | "attribute" -> Attribute
  | name -> fail pos "unknown axis %s" name

let rec parse_path st =
  skip_spaces st;
  let absolute = looking_at st "/" in
  let first_axis =
    if looking_at st "//" then begin
      st.pos <- st.pos + 2;
      Some Descendant
    end
    else if looking_at st "/" then begin
      st.pos <- st.pos + 1;
      Some Child
    end
    else None
  in
  (* "/" alone selects the root: represent as absolute self::node(). *)
  skip_spaces st;
  if absolute && (peek st = None || peek st = Some ']' || peek st = Some ')') then
    { absolute = true; steps = [ { axis = Self; test = Node; predicates = [] } ] }
  else begin
    let first = parse_step st (Option.value ~default:Child first_axis) in
    let rec more acc =
      skip_spaces st;
      if looking_at st "//" then begin
        st.pos <- st.pos + 2;
        more (List.rev_append (parse_step st Descendant) acc)
      end
      else if looking_at st "/" then begin
        st.pos <- st.pos + 1;
        more (List.rev_append (parse_step st Child) acc)
      end
      else List.rev acc
    in
    { absolute; steps = more (List.rev first) }
  end

(* A syntactic step can desugar into two semantic steps: [//@id] means
   descendant::node()/attribute::id, and similarly for [//.] etc. *)
and parse_step st default_axis =
  skip_spaces st;
  let prefix_for_abbreviation =
    match default_axis with
    | Descendant -> [ { axis = Descendant; test = Node; predicates = [] } ]
    | _ -> []
  in
  if looking_at st ".." then begin
    st.pos <- st.pos + 2;
    prefix_for_abbreviation
    @ [ { axis = Parent; test = Node; predicates = parse_predicates st } ]
  end
  else if looking_at st "." then begin
    st.pos <- st.pos + 1;
    prefix_for_abbreviation
    @ [ { axis = Self; test = Node; predicates = parse_predicates st } ]
  end
  else if looking_at st "@" then begin
    st.pos <- st.pos + 1;
    let test = if looking_at st "*" then (st.pos <- st.pos + 1; Any) else Name (read_name st) in
    prefix_for_abbreviation
    @ [ { axis = Attribute; test; predicates = parse_predicates st } ]
  end
  else begin
    (* Explicit axis? *)
    let save = st.pos in
    let axis, explicit =
      match peek st with
      | Some c when is_name_start c ->
          let name = read_name st in
          if looking_at st "::" then begin
            st.pos <- st.pos + 2;
            (axis_of_name save name, true)
          end
          else begin
            st.pos <- save;
            (default_axis, false)
          end
      | _ -> (default_axis, false)
    in
    let test =
      if looking_at st "*" then begin
        st.pos <- st.pos + 1;
        Any
      end
      else if looking_at_word st "text" && looking_at st "text()" then begin
        st.pos <- st.pos + 6;
        Text
      end
      else if looking_at_word st "node" && looking_at st "node()" then begin
        st.pos <- st.pos + 6;
        Node
      end
      else Name (read_name st)
    in
    let step = { axis; test; predicates = parse_predicates st } in
    (* [//axis::x] needs the descendant hop before the explicit axis. *)
    if explicit then prefix_for_abbreviation @ [ step ] else [ step ]
  end

and parse_predicates st =
  skip_spaces st;
  if looking_at st "[" then begin
    eat st "[";
    let e = parse_or st in
    skip_spaces st;
    eat st "]";
    e :: parse_predicates st
  end
  else []

and parse_or st =
  let left = parse_and st in
  skip_spaces st;
  if looking_at_word st "or" then begin
    st.pos <- st.pos + 2;
    Or (left, parse_or st)
  end
  else left

and parse_and st =
  let left = parse_cmp st in
  skip_spaces st;
  if looking_at_word st "and" then begin
    st.pos <- st.pos + 3;
    And (left, parse_and st)
  end
  else left

and parse_cmp st =
  let left = parse_primary st in
  skip_spaces st;
  if looking_at st "!=" then begin
    st.pos <- st.pos + 2;
    Not_equals (left, parse_primary st)
  end
  else if looking_at st "=" then begin
    st.pos <- st.pos + 1;
    Equals (left, parse_primary st)
  end
  else if looking_at st "<" then begin
    st.pos <- st.pos + 1;
    Less (left, parse_primary st)
  end
  else if looking_at st ">" then begin
    st.pos <- st.pos + 1;
    Greater (left, parse_primary st)
  end
  else left

and parse_primary st =
  skip_spaces st;
  match peek st with
  | None -> fail st.pos "unexpected end of expression"
  | Some '(' ->
      eat st "(";
      let e = parse_or st in
      skip_spaces st;
      eat st ")";
      e
  | Some ('"' | '\'') ->
      let q = Option.get (peek st) in
      st.pos <- st.pos + 1;
      let start = st.pos in
      (match String.index_from_opt st.src st.pos q with
      | Some close ->
          let s = String.sub st.src start (close - start) in
          st.pos <- close + 1;
          Literal s
      | None -> fail start "unterminated string literal")
  | Some ('0' .. '9') ->
      let start = st.pos in
      while
        st.pos < String.length st.src
        && (match st.src.[st.pos] with '0' .. '9' | '.' -> true | _ -> false)
      do
        st.pos <- st.pos + 1
      done;
      Number (float_of_string (String.sub st.src start (st.pos - start)))
  | Some _ ->
      if looking_at_word st "position" && looking_at st "position()" then begin
        st.pos <- st.pos + 10;
        Position
      end
      else if looking_at_word st "last" && looking_at st "last()" then begin
        st.pos <- st.pos + 6;
        Last
      end
      else if looking_at_word st "count" && looking_at st "count(" then begin
        st.pos <- st.pos + 6;
        let p = parse_path st in
        skip_spaces st;
        eat st ")";
        Count p
      end
      else if looking_at_word st "contains" && looking_at st "contains(" then begin
        st.pos <- st.pos + 9;
        let a = parse_primary st in
        skip_spaces st;
        eat st ",";
        let b = parse_primary st in
        skip_spaces st;
        eat st ")";
        Contains (a, b)
      end
      else if looking_at_word st "not" && looking_at st "not(" then begin
        st.pos <- st.pos + 4;
        let e = parse_or st in
        skip_spaces st;
        eat st ")";
        Not e
      end
      else Path (parse_path st)

let parse src =
  let st = { src; pos = 0 } in
  let p = parse_path st in
  skip_spaces st;
  if st.pos <> String.length src then fail st.pos "trailing input";
  p

let parse_expr src =
  let st = { src; pos = 0 } in
  let e = parse_or st in
  skip_spaces st;
  if st.pos <> String.length src then fail st.pos "trailing input";
  e
