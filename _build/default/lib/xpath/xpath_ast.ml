type axis =
  | Child
  | Descendant
  | Descendant_or_self
  | Self
  | Parent
  | Ancestor
  | Following_sibling
  | Preceding_sibling
  | Attribute

type node_test = Name of string | Any | Text | Node

type expr =
  | Path of path
  | Literal of string
  | Number of float
  | Position
  | Last
  | Count of path
  | Contains of expr * expr
  | Equals of expr * expr
  | Not_equals of expr * expr
  | Less of expr * expr
  | Greater of expr * expr
  | And of expr * expr
  | Or of expr * expr
  | Not of expr

and step = { axis : axis; test : node_test; predicates : expr list }
and path = { absolute : bool; steps : step list }

let axis_to_string = function
  | Child -> "child"
  | Descendant -> "descendant"
  | Descendant_or_self -> "descendant-or-self"
  | Self -> "self"
  | Parent -> "parent"
  | Ancestor -> "ancestor"
  | Following_sibling -> "following-sibling"
  | Preceding_sibling -> "preceding-sibling"
  | Attribute -> "attribute"

let test_to_string = function
  | Name n -> n
  | Any -> "*"
  | Text -> "text()"
  | Node -> "node()"

let rec path_to_string p =
  let step_str s =
    let preds =
      String.concat "" (List.map (fun e -> "[" ^ expr_to_string e ^ "]") s.predicates)
    in
    Printf.sprintf "%s::%s%s" (axis_to_string s.axis) (test_to_string s.test) preds
  in
  (if p.absolute then "/" else "")
  ^ String.concat "/" (List.map step_str p.steps)

and expr_to_string = function
  | Path p -> path_to_string p
  | Literal s -> Printf.sprintf "%S" s
  | Number f -> Printf.sprintf "%g" f
  | Position -> "position()"
  | Last -> "last()"
  | Count p -> Printf.sprintf "count(%s)" (path_to_string p)
  | Contains (a, b) ->
      Printf.sprintf "contains(%s, %s)" (expr_to_string a) (expr_to_string b)
  | Equals (a, b) -> Printf.sprintf "(%s = %s)" (expr_to_string a) (expr_to_string b)
  | Not_equals (a, b) ->
      Printf.sprintf "(%s != %s)" (expr_to_string a) (expr_to_string b)
  | Less (a, b) -> Printf.sprintf "(%s < %s)" (expr_to_string a) (expr_to_string b)
  | Greater (a, b) -> Printf.sprintf "(%s > %s)" (expr_to_string a) (expr_to_string b)
  | And (a, b) -> Printf.sprintf "(%s and %s)" (expr_to_string a) (expr_to_string b)
  | Or (a, b) -> Printf.sprintf "(%s or %s)" (expr_to_string a) (expr_to_string b)
  | Not e -> Printf.sprintf "not(%s)" (expr_to_string e)
