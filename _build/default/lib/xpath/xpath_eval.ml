module Dom = Trex_xml.Dom
open Xpath_ast

(* Navigable node model: elements, text nodes and attributes with
   parent links and global document order. *)
type el_node = {
  element : Dom.element;
  parent : el_node option;
  order : int;
  mutable kids : node list; (* element and text children, document order *)
  mutable attrs : node list;
}

and node =
  | El of el_node
  | Txt of { content : string; t_parent : el_node; t_order : int }
  | Attr of { a_name : string; a_value : string; a_parent : el_node; a_order : int }

type t = { root : el_node }

let node_order = function
  | El e -> e.order
  | Txt { t_order; _ } -> t_order
  | Attr { a_order; _ } -> a_order

let of_doc (doc : Dom.doc) =
  let counter = ref 0 in
  let next () =
    incr counter;
    !counter
  in
  let rec build parent (element : Dom.element) =
    let en = { element; parent; order = next (); kids = []; attrs = [] } in
    en.attrs <-
      List.map
        (fun (a_name, a_value) ->
          Attr { a_name; a_value; a_parent = en; a_order = next () })
        element.attrs;
    en.kids <-
      List.map
        (function
          | Dom.Element child -> El (build (Some en) child)
          | Dom.Text { content; _ } ->
              Txt { content; t_parent = en; t_order = next () })
        element.children;
    en
  in
  { root = build None doc.root }

(* ---- axes ---- *)

let rec descendants en acc =
  List.fold_left
    (fun acc kid ->
      match kid with
      | El child -> descendants child (El child :: acc)
      | Txt _ -> kid :: acc
      | Attr _ -> acc)
    acc en.kids

let parent_node = function
  | El e -> Option.map (fun p -> El p) e.parent
  | Txt { t_parent; _ } -> Some (El t_parent)
  | Attr { a_parent; _ } -> Some (El a_parent)

let siblings node ~before =
  match parent_node node with
  | None -> []
  | Some (El p) ->
      let me = node_order node in
      let all = p.kids in
      if before then
        List.rev (List.filter (fun k -> node_order k < me) all)
      else List.filter (fun k -> node_order k > me) all
  | Some (Txt _ | Attr _) -> []

(* Candidates along an axis, in axis direction order. *)
let axis_candidates node axis =
  match (axis, node) with
  | Child, El e -> e.kids
  | Child, (Txt _ | Attr _) -> []
  | Descendant, El e -> List.rev (descendants e [])
  | Descendant, (Txt _ | Attr _) -> []
  | Descendant_or_self, El e -> node :: List.rev (descendants e [])
  | Descendant_or_self, (Txt _ | Attr _) -> [ node ]
  | Self, _ -> [ node ]
  | Parent, _ -> ( match parent_node node with Some p -> [ p ] | None -> [])
  | Ancestor, _ ->
      let rec up acc n =
        match parent_node n with Some p -> up (p :: acc) p | None -> List.rev acc
      in
      up [] node
  | Following_sibling, _ -> siblings node ~before:false
  | Preceding_sibling, _ -> siblings node ~before:true
  | Attribute, El e -> e.attrs
  | Attribute, (Txt _ | Attr _) -> []

let test_matches axis test node =
  match (test, node) with
  | Name n, El e -> e.element.Dom.tag = n
  | Name n, Attr { a_name; _ } -> axis = Attribute && a_name = n
  | Name _, Txt _ -> false
  | Any, El _ -> true
  | Any, Attr _ -> axis = Attribute
  | Any, Txt _ -> false
  | Text, Txt _ -> true
  | Text, (El _ | Attr _) -> false
  | Node, _ -> true

(* ---- values and coercion ---- *)

type value = Nodes of node list | Str of string | Num of float | Bool of bool

let string_value = function
  | El e -> Dom.text_content e.element
  | Txt { content; _ } -> content
  | Attr { a_value; _ } -> a_value

let to_bool = function
  | Nodes l -> l <> []
  | Str s -> s <> ""
  | Num f -> f <> 0.0 && not (Float.is_nan f)
  | Bool b -> b

let to_string = function
  | Nodes [] -> ""
  | Nodes (n :: _) -> string_value n
  | Str s -> s
  | Num f -> Printf.sprintf "%g" f
  | Bool b -> if b then "true" else "false"

let to_num v =
  match v with
  | Num f -> f
  | Bool b -> if b then 1.0 else 0.0
  | (Str _ | Nodes _) as v -> (
      match float_of_string_opt (String.trim (to_string v)) with
      | Some f -> f
      | None -> Float.nan)

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* ---- evaluation ---- *)

let dedup_sorted nodes =
  let sorted = List.sort (fun a b -> compare (node_order a) (node_order b)) nodes in
  let rec uniq = function
    | a :: (b :: _ as rest) when node_order a = node_order b -> uniq rest
    | a :: rest -> a :: uniq rest
    | [] -> []
  in
  uniq sorted

(* An absolute path starts at a virtual parent of the document element:
   /books selects the root element iff its tag is books, //x walks the
   whole tree including the root. *)
let rec eval_path t ~context (p : path) =
  if not p.absolute then
    List.fold_left (fun ctx step -> eval_step t ctx step) context p.steps
  else
    match p.steps with
    | [] -> []
    | first :: rest ->
        let initial =
          match first.axis with
          | Child ->
              let cand =
                List.filter (test_matches Child first.test) [ El t.root ]
              in
              List.fold_left (fun c pr -> apply_predicate t c pr) cand
                first.predicates
          | Descendant ->
              let cand = El t.root :: List.rev (descendants t.root []) in
              let cand = List.filter (test_matches Descendant first.test) cand in
              List.fold_left (fun c pr -> apply_predicate t c pr) cand
                first.predicates
          | Self | Descendant_or_self -> eval_step t [ El t.root ] first
          | Parent | Ancestor | Following_sibling | Preceding_sibling | Attribute ->
              []
        in
        List.fold_left (fun ctx step -> eval_step t ctx step) initial rest

and eval_step t context step =
  let per_context node =
    let candidates =
      List.filter (test_matches step.axis step.test) (axis_candidates node step.axis)
    in
    List.fold_left
      (fun cands pred -> apply_predicate t cands pred)
      candidates step.predicates
  in
  dedup_sorted (List.concat_map per_context context)

and apply_predicate t candidates pred =
  let last = List.length candidates in
  List.filteri
    (fun i node ->
      let position = i + 1 in
      match pred with
      | Number f -> float_of_int position = f
      | e -> to_bool (eval_expr t ~node ~position ~last e))
    candidates

and eval_expr t ~node ~position ~last = function
  | Path p -> Nodes (eval_path t ~context:[ node ] p)
  | Literal s -> Str s
  | Number f -> Num f
  | Position -> Num (float_of_int position)
  | Last -> Num (float_of_int last)
  | Count p -> Num (float_of_int (List.length (eval_path t ~context:[ node ] p)))
  | Contains (a, b) ->
      let sa = to_string (eval_expr t ~node ~position ~last a) in
      let sb = to_string (eval_expr t ~node ~position ~last b) in
      Bool (contains_sub sa sb)
  | Equals (a, b) -> Bool (values_equal t ~node ~position ~last a b)
  | Not_equals (a, b) -> Bool (not (values_equal t ~node ~position ~last a b))
  | Less (a, b) ->
      let fa = to_num (eval_expr t ~node ~position ~last a) in
      let fb = to_num (eval_expr t ~node ~position ~last b) in
      Bool (fa < fb)
  | Greater (a, b) ->
      let fa = to_num (eval_expr t ~node ~position ~last a) in
      let fb = to_num (eval_expr t ~node ~position ~last b) in
      Bool (fa > fb)
  | And (a, b) ->
      Bool
        (to_bool (eval_expr t ~node ~position ~last a)
        && to_bool (eval_expr t ~node ~position ~last b))
  | Or (a, b) ->
      Bool
        (to_bool (eval_expr t ~node ~position ~last a)
        || to_bool (eval_expr t ~node ~position ~last b))
  | Not e -> Bool (not (to_bool (eval_expr t ~node ~position ~last e)))

and values_equal t ~node ~position ~last a b =
  let va = eval_expr t ~node ~position ~last a in
  let vb = eval_expr t ~node ~position ~last b in
  match (va, vb) with
  | Nodes la, Nodes lb ->
      List.exists
        (fun na -> List.exists (fun nb -> string_value na = string_value nb) lb)
        la
  | Nodes l, (Num _ as n) | (Num _ as n), Nodes l ->
      List.exists (fun nd -> to_num (Str (string_value nd)) = to_num n) l
  | Nodes l, other | other, Nodes l ->
      List.exists (fun nd -> string_value nd = to_string other) l
  | (Num _, _ | _, Num _) -> to_num va = to_num vb
  | _ -> to_string va = to_string vb

(* ---- public API ---- *)

let select_nodes t p = eval_path t ~context:[ El t.root ] p

let select t p =
  List.filter_map (function El e -> Some e.element | Txt _ | Attr _ -> None)
    (select_nodes t p)

let select_values t p = List.map string_value (select_nodes t p)
let count t p = List.length (select_nodes t p)
let run t src = select t (Xpath_parser.parse src)
