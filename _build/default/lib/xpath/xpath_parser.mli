(** Parser for the XPath subset (abbreviated syntax).

    Supported: absolute/relative location paths, the axes of
    {!Xpath_ast.axis} (explicit [axis::] or the abbreviations [/],
    [//], [.], [..], [@]), name/[*]/[text()]/[node()] tests, and
    predicates with [position()], [last()], [count()], [contains()],
    [not()], comparisons, [and]/[or], string literals and numbers.

    [//] is parsed as the [descendant] axis (not expanded through
    [descendant-or-self::node()]), which matches NEXI's reading; the
    difference is only observable with positional predicates directly
    after [//]. *)

exception Syntax_error of { message : string; pos : int }

val parse : string -> Xpath_ast.path
(** @raise Syntax_error *)

val parse_expr : string -> Xpath_ast.expr
(** Parse a bare predicate expression (used in tests). *)
