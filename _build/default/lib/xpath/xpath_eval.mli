(** XPath evaluation over parsed documents.

    Implements the reference semantics for the subset in
    {!Xpath_parser}: node-set results in document order, predicates
    with position/last, attribute and text selection, and the usual
    value coercions. Used as the ground-truth oracle that summary-based
    translation over-approximates, and by the extent-inspection
    tooling. *)

type t
(** A document indexed for navigation (parent links, document order). *)

val of_doc : Trex_xml.Dom.doc -> t

val select : t -> Xpath_ast.path -> Trex_xml.Dom.element list
(** Element results of an absolute path, in document order. Non-element
    results (text, attributes) are omitted — see {!select_values}. *)

val select_values : t -> Xpath_ast.path -> string list
(** String-values of all result nodes (elements: concatenated text;
    attributes: the value; text nodes: the content), document order. *)

val count : t -> Xpath_ast.path -> int
(** Number of result nodes of any kind. *)

val run : t -> string -> Trex_xml.Dom.element list
(** Parse and {!select} in one call.
    @raise Xpath_parser.Syntax_error *)
