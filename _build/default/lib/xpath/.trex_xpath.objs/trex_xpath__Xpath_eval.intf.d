lib/xpath/xpath_eval.mli: Trex_xml Xpath_ast
