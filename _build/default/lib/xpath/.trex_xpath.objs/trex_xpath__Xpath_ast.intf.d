lib/xpath/xpath_ast.mli:
