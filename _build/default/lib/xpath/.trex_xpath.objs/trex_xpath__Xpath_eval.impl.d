lib/xpath/xpath_eval.ml: Float List Option Printf String Trex_xml Xpath_ast Xpath_parser
