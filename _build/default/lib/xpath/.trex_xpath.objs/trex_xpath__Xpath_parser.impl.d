lib/xpath/xpath_parser.ml: List Option Printf String Xpath_ast
