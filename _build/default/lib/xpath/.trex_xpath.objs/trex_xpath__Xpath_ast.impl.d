lib/xpath/xpath_ast.ml: List Printf String
