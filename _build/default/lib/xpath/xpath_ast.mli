(** Abstract syntax for the XPath 1.0 subset TReX uses.

    The paper notes that "most of the summaries proposed in the
    literature can be described using XPath expressions"; this engine
    evaluates such descriptions (and NEXI's structural skeletons)
    directly over documents — the reference semantics the summaries
    approximate. *)

type axis =
  | Child
  | Descendant
  | Descendant_or_self
  | Self
  | Parent
  | Ancestor
  | Following_sibling
  | Preceding_sibling
  | Attribute

type node_test =
  | Name of string  (** element (or attribute) name *)
  | Any  (** [*] *)
  | Text  (** [text()] *)
  | Node  (** [node()] *)

type expr =
  | Path of path
  | Literal of string
  | Number of float
  | Position
  | Last
  | Count of path
  | Contains of expr * expr
  | Equals of expr * expr
  | Not_equals of expr * expr
  | Less of expr * expr
  | Greater of expr * expr
  | And of expr * expr
  | Or of expr * expr
  | Not of expr

and step = { axis : axis; test : node_test; predicates : expr list }

and path = {
  absolute : bool;  (** starts with [/] (or [//]) from the root *)
  steps : step list;
}

val axis_to_string : axis -> string
val path_to_string : path -> string
val expr_to_string : expr -> string
