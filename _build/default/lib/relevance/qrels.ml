module Query_map = Map.Make (String)
module Doc_map = Map.Make (Int)

type t = int Doc_map.t Query_map.t

let empty = Query_map.empty

let add t ~query ~docid ~grade =
  if grade < 0 then invalid_arg "Qrels.add: negative grade";
  let docs = Option.value ~default:Doc_map.empty (Query_map.find_opt query t) in
  Query_map.add query (Doc_map.add docid grade docs) t

let of_list triples =
  List.fold_left (fun t (query, docid, grade) -> add t ~query ~docid ~grade) empty triples

let grade t ~query ~docid =
  match Query_map.find_opt query t with
  | None -> 0
  | Some docs -> Option.value ~default:0 (Doc_map.find_opt docid docs)

let is_relevant t ~query ~docid = grade t ~query ~docid > 0

let relevant_count t ~query =
  match Query_map.find_opt query t with
  | None -> 0
  | Some docs -> Doc_map.fold (fun _ g acc -> if g > 0 then acc + 1 else acc) docs 0

let grades t ~query =
  match Query_map.find_opt query t with
  | None -> []
  | Some docs ->
      Doc_map.fold (fun _ g acc -> if g > 0 then g :: acc else acc) docs []
      |> List.sort (fun a b -> compare b a)

let judged_queries t = List.map fst (Query_map.bindings t)
