(** Ranked-retrieval effectiveness metrics.

    All metrics take a query's ranked list of docids (best first,
    duplicates ignored after first occurrence) and the {!Qrels}. Binary
    metrics treat grade > 0 as relevant; nDCG uses the grades. Results
    are in [0, 1]; queries with no relevant documents score 0 by
    convention. *)

val precision_at : Qrels.t -> query:string -> k:int -> int list -> float
(** Fraction of the first [k] ranks that are relevant (ranks beyond the
    list count as misses). @raise Invalid_argument if [k <= 0]. *)

val recall_at : Qrels.t -> query:string -> k:int -> int list -> float

val r_precision : Qrels.t -> query:string -> int list -> float
(** Precision at R = number of relevant documents. *)

val average_precision : Qrels.t -> query:string -> int list -> float
(** Mean of precision@rank over the ranks holding relevant documents,
    normalized by R — the per-query component of MAP. *)

val ndcg_at : Qrels.t -> query:string -> k:int -> int list -> float
(** Normalized discounted cumulative gain with gain [2^grade - 1] and
    log2 rank discount. *)

val reciprocal_rank : Qrels.t -> query:string -> int list -> float

val mean : ('a -> float) -> 'a list -> float
(** Average a per-query metric over queries (0 on the empty list) —
    e.g. MAP = [mean (average_precision qrels ~query:...) queries]. *)
