(** Relevance judgments (qrels), INEX/TREC style.

    The paper's first challenge — "queries are expected to be answered
    as ... effectively as in traditional keyword search" — needs graded
    judgments to quantify. Judgments map (query, document) to a
    non-negative grade; grade 0 (or absence) means not relevant. *)

type t

val empty : t
val add : t -> query:string -> docid:int -> grade:int -> t
(** Re-adding replaces the grade. @raise Invalid_argument on a negative
    grade. *)

val of_list : (string * int * int) list -> t
(** (query, docid, grade) triples. *)

val grade : t -> query:string -> docid:int -> int
(** 0 when unjudged. *)

val is_relevant : t -> query:string -> docid:int -> bool
(** grade > 0. *)

val relevant_count : t -> query:string -> int

val grades : t -> query:string -> int list
(** All positive grades judged for the query, descending — the ideal
    gain profile nDCG normalizes against. *)

val judged_queries : t -> string list
