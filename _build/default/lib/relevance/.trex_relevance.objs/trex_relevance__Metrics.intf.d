lib/relevance/metrics.mli: Qrels
