lib/relevance/metrics.ml: Float Hashtbl List Qrels
