lib/relevance/qrels.mli:
