lib/relevance/qrels.ml: Int List Map Option String
