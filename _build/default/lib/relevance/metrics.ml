let dedup ranking =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun d ->
      if Hashtbl.mem seen d then false
      else begin
        Hashtbl.add seen d ();
        true
      end)
    ranking

let rec take n = function
  | [] -> []
  | x :: rest -> if n <= 0 then [] else x :: take (n - 1) rest

let precision_at qrels ~query ~k ranking =
  if k <= 0 then invalid_arg "Metrics.precision_at: k must be positive";
  let hits =
    take k (dedup ranking)
    |> List.filter (fun docid -> Qrels.is_relevant qrels ~query ~docid)
    |> List.length
  in
  float_of_int hits /. float_of_int k

let recall_at qrels ~query ~k ranking =
  if k <= 0 then invalid_arg "Metrics.recall_at: k must be positive";
  let total = Qrels.relevant_count qrels ~query in
  if total = 0 then 0.0
  else begin
    let hits =
      take k (dedup ranking)
      |> List.filter (fun docid -> Qrels.is_relevant qrels ~query ~docid)
      |> List.length
    in
    float_of_int hits /. float_of_int total
  end

let r_precision qrels ~query ranking =
  let r = Qrels.relevant_count qrels ~query in
  if r = 0 then 0.0 else precision_at qrels ~query ~k:r ranking

let average_precision qrels ~query ranking =
  let total = Qrels.relevant_count qrels ~query in
  if total = 0 then 0.0
  else begin
    let _, sum =
      List.fold_left
        (fun (rank, (hits, sum)) docid ->
          let rank = rank + 1 in
          if Qrels.is_relevant qrels ~query ~docid then begin
            let hits = hits + 1 in
            (rank, (hits, sum +. (float_of_int hits /. float_of_int rank)))
          end
          else (rank, (hits, sum)))
        (0, (0, 0.0))
        (dedup ranking)
      |> fun (rank, acc) ->
      ignore rank;
      acc
    in
    sum /. float_of_int total
  end

let gain grade = Float.pow 2.0 (float_of_int grade) -. 1.0
let discount rank = 1.0 /. (Float.log (float_of_int (rank + 1)) /. Float.log 2.0)

let ndcg_at qrels ~query ~k ranking =
  if k <= 0 then invalid_arg "Metrics.ndcg_at: k must be positive";
  let dcg =
    take k (dedup ranking)
    |> List.mapi (fun i docid ->
           gain (Qrels.grade qrels ~query ~docid) *. discount (i + 1))
    |> List.fold_left ( +. ) 0.0
  in
  let ideal =
    take k (Qrels.grades qrels ~query)
    |> List.mapi (fun i g -> gain g *. discount (i + 1))
    |> List.fold_left ( +. ) 0.0
  in
  if ideal <= 0.0 then 0.0 else dcg /. ideal

let reciprocal_rank qrels ~query ranking =
  let rec go rank = function
    | [] -> 0.0
    | docid :: rest ->
        if Qrels.is_relevant qrels ~query ~docid then 1.0 /. float_of_int rank
        else go (rank + 1) rest
  in
  go 1 (dedup ranking)

let mean f items =
  match items with
  | [] -> 0.0
  | _ ->
      List.fold_left (fun acc x -> acc +. f x) 0.0 items
      /. float_of_int (List.length items)
