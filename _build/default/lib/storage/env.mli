(** Storage environment: a namespace of B+tree tables.

    Plays the role BerkeleyDB plays in the paper — each indexed table
    ([Elements], [PostingLists], [RPLs], [ERPLs], ...) is one B+tree,
    either file-backed inside a directory or in memory. Disk usage per
    table is observable because the self-management layer optimizes
    index choice under a disk budget. *)

type t

val in_memory : ?page_size:int -> unit -> t

val on_disk : ?page_size:int -> ?cache_pages:int -> string -> t
(** [on_disk dir] creates [dir] if needed; each table lives in
    [dir/<name>.tbl]. Existing table files are re-attached. *)

val table : t -> string -> Bptree.t
(** Create-or-attach. Table names must match [[A-Za-z0-9_.-]+]. *)

val has_table : t -> string -> bool
val drop_table : t -> string -> unit
(** Close and delete the table; a no-op when absent. *)

val table_names : t -> string list

val table_bytes : t -> string -> int
(** Bytes of storage held by the table (pages * page size); 0 when
    absent. *)

val compact_table : t -> string -> unit
(** Rebuild the table into freshly bulk-loaded pages, releasing the
    space dead entries and dropped lists still hold (B+trees never
    shrink in place). On disk the table file is atomically replaced;
    open cursors into the old tree are invalidated. A no-op when the
    table does not exist. *)

val total_bytes : t -> int
val io_stats : t -> (string * Pager.stats) list
val flush : t -> unit
val close : t -> unit
