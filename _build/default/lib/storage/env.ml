type backend = Mem | Disk of { dir : string; cache_pages : int }

type t = {
  backend : backend;
  page_size : int;
  tables : (string, Bptree.t) Hashtbl.t;
}

let in_memory ?(page_size = 8192) () =
  { backend = Mem; page_size; tables = Hashtbl.create 8 }

let on_disk ?(page_size = 8192) ?(cache_pages = 4096) dir =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755
  else if not (Sys.is_directory dir) then
    invalid_arg (Printf.sprintf "Env.on_disk: %s is not a directory" dir);
  { backend = Disk { dir; cache_pages }; page_size; tables = Hashtbl.create 8 }

let valid_name name =
  name <> ""
  && String.for_all
       (function
         | 'A' .. 'Z' | 'a' .. 'z' | '0' .. '9' | '_' | '.' | '-' -> true
         | _ -> false)
       name

let path_of dir name = Filename.concat dir (name ^ ".tbl")

let table t name =
  if not (valid_name name) then invalid_arg ("Env.table: bad name " ^ name);
  match Hashtbl.find_opt t.tables name with
  | Some tree -> tree
  | None ->
      let tree =
        match t.backend with
        | Mem -> Bptree.create (Pager.create_memory ~page_size:t.page_size ())
        | Disk { dir; cache_pages } ->
            let path = path_of dir name in
            if Sys.file_exists path then
              Bptree.attach (Pager.open_file ~cache_pages path)
            else
              Bptree.create
                (Pager.create_file ~page_size:t.page_size ~cache_pages path)
      in
      Hashtbl.add t.tables name tree;
      tree

let has_table t name =
  Hashtbl.mem t.tables name
  ||
  match t.backend with
  | Mem -> false
  | Disk { dir; _ } -> Sys.file_exists (path_of dir name)

let drop_table t name =
  (match Hashtbl.find_opt t.tables name with
  | Some tree ->
      Pager.close (Bptree.pager tree);
      Hashtbl.remove t.tables name
  | None -> ());
  match t.backend with
  | Mem -> ()
  | Disk { dir; _ } ->
      let path = path_of dir name in
      if Sys.file_exists path then Sys.remove path

let table_names t =
  let open_names = Hashtbl.fold (fun k _ acc -> k :: acc) t.tables [] in
  let disk_names =
    match t.backend with
    | Mem -> []
    | Disk { dir; _ } ->
        Sys.readdir dir |> Array.to_list
        |> List.filter_map (fun f ->
               if Filename.check_suffix f ".tbl" then
                 Some (Filename.chop_suffix f ".tbl")
               else None)
  in
  List.sort_uniq String.compare (open_names @ disk_names)

let table_bytes t name =
  match Hashtbl.find_opt t.tables name with
  | Some tree ->
      let p = Bptree.pager tree in
      Pager.page_count p * Pager.page_size p
  | None -> (
      match t.backend with
      | Mem -> 0
      | Disk { dir; _ } ->
          let path = path_of dir name in
          if Sys.file_exists path then (Unix.stat path).Unix.st_size else 0)

let total_bytes t =
  List.fold_left (fun acc n -> acc + table_bytes t n) 0 (table_names t)

let compact_table t name =
  if has_table t name then begin
    let tree = table t name in
    let entries = ref [] in
    Bptree.iter tree (fun k v -> entries := (k, v) :: !entries);
    let entries = List.rev !entries in
    match t.backend with
    | Mem ->
        let fresh =
          Bptree.bulk_load (Pager.create_memory ~page_size:t.page_size ()) (List.to_seq entries)
        in
        Pager.close (Bptree.pager tree);
        Hashtbl.replace t.tables name fresh
    | Disk { dir; cache_pages } ->
        let tmp = path_of dir (name ^ ".compact-tmp") in
        let pager = Pager.create_file ~page_size:t.page_size ~cache_pages tmp in
        ignore (Bptree.bulk_load pager (List.to_seq entries));
        Pager.close pager;
        Pager.close (Bptree.pager tree);
        Hashtbl.remove t.tables name;
        Sys.rename tmp (path_of dir name);
        ignore (table t name)
  end

let io_stats t =
  Hashtbl.fold
    (fun name tree acc -> (name, Pager.stats (Bptree.pager tree)) :: acc)
    t.tables []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let flush t = Hashtbl.iter (fun _ tree -> Pager.flush (Bptree.pager tree)) t.tables

let close t =
  Hashtbl.iter (fun _ tree -> Pager.close (Bptree.pager tree)) t.tables;
  Hashtbl.reset t.tables
