lib/storage/env.ml: Array Bptree Filename Hashtbl List Pager Printf String Sys Unix
