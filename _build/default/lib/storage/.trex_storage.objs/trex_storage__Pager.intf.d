lib/storage/pager.mli:
