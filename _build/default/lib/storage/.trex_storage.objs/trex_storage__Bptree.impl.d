lib/storage/bptree.ml: Array Bytes List Pager Printf Seq String Trex_util
