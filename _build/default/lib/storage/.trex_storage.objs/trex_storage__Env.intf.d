lib/storage/env.mli: Bptree Pager
