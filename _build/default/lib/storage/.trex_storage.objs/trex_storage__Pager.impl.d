lib/storage/pager.ml: Array Bytes Hashtbl Int64 Printf Unix
