lib/storage/bptree.mli: Pager Seq
