type stats = {
  physical_reads : int;
  physical_writes : int;
  cache_hits : int;
  cache_misses : int;
}

type backend =
  | Memory of bytes array ref
  | File of { fd : Unix.file_descr; cache_pages : int }

type cached = { buf : bytes; mutable dirty : bool; mutable stamp : int }

type t = {
  backend : backend;
  page_size : int;
  mutable page_count : int;
  mutable root : int;
  cache : (int, cached) Hashtbl.t;
  mutable tick : int;
  mutable physical_reads : int;
  mutable physical_writes : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
}

(* The header occupies page 0 of file-backed pagers:
   magic "TRExPG01" | page_size (8 bytes BE) | page_count | root. *)
let magic = "TRExPG01"
let header_size = 32

let default_page_size = 8192

let create_memory ?(page_size = default_page_size) () =
  {
    backend = Memory (ref [||]);
    page_size;
    page_count = 0;
    root = -1;
    cache = Hashtbl.create 16;
    tick = 0;
    physical_reads = 0;
    physical_writes = 0;
    cache_hits = 0;
    cache_misses = 0;
  }

let write_header t =
  match t.backend with
  | Memory _ -> ()
  | File { fd; _ } ->
      let b = Bytes.make header_size '\x00' in
      Bytes.blit_string magic 0 b 0 8;
      Bytes.set_int64_be b 8 (Int64.of_int t.page_size);
      Bytes.set_int64_be b 16 (Int64.of_int t.page_count);
      Bytes.set_int64_be b 24 (Int64.of_int t.root);
      ignore (Unix.lseek fd 0 Unix.SEEK_SET);
      let n = Unix.write fd b 0 header_size in
      if n <> header_size then failwith "Pager: short header write"

let create_file ?(page_size = default_page_size) ?(cache_pages = 4096) path =
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  let t =
    {
      backend = File { fd; cache_pages };
      page_size;
      page_count = 0;
      root = -1;
      cache = Hashtbl.create 64;
      tick = 0;
      physical_reads = 0;
      physical_writes = 0;
      cache_hits = 0;
      cache_misses = 0;
    }
  in
  write_header t;
  t

let open_file ?(cache_pages = 4096) path =
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
  let b = Bytes.create header_size in
  let n = Unix.read fd b 0 header_size in
  if n <> header_size || Bytes.sub_string b 0 8 <> magic then
    failwith (Printf.sprintf "Pager.open_file: %s is not a pager file" path);
  let page_size = Int64.to_int (Bytes.get_int64_be b 8) in
  let page_count = Int64.to_int (Bytes.get_int64_be b 16) in
  let root = Int64.to_int (Bytes.get_int64_be b 24) in
  {
    backend = File { fd; cache_pages };
    page_size;
    page_count;
    root;
    cache = Hashtbl.create 64;
    tick = 0;
    physical_reads = 0;
    physical_writes = 0;
    cache_hits = 0;
    cache_misses = 0;
  }

let page_size t = t.page_size
let page_count t = t.page_count
let set_root t r =
  t.root <- r;
  write_header t

let get_root t = t.root

let file_offset t id = header_size + (id * t.page_size)

let physical_read t fd id buf =
  ignore (Unix.lseek fd (file_offset t id) Unix.SEEK_SET);
  let rec fill off =
    if off < t.page_size then begin
      let n = Unix.read fd buf off (t.page_size - off) in
      if n = 0 then
        (* Page was allocated but never flushed: treat as zeroes. *)
        Bytes.fill buf off (t.page_size - off) '\x00'
      else fill (off + n)
    end
  in
  fill 0;
  t.physical_reads <- t.physical_reads + 1

let physical_write t fd id buf =
  ignore (Unix.lseek fd (file_offset t id) Unix.SEEK_SET);
  let n = Unix.write fd buf 0 t.page_size in
  if n <> t.page_size then failwith "Pager: short page write";
  t.physical_writes <- t.physical_writes + 1

let evict_one t fd =
  (* Evict the least recently used cached page. Linear scan is fine:
     eviction is rare relative to hits and the cache is bounded. *)
  let victim = ref (-1) and best = ref max_int in
  Hashtbl.iter
    (fun id c ->
      if c.stamp < !best then begin
        best := c.stamp;
        victim := id
      end)
    t.cache;
  if !victim >= 0 then begin
    let c = Hashtbl.find t.cache !victim in
    if c.dirty then physical_write t fd !victim c.buf;
    Hashtbl.remove t.cache !victim
  end

let touch t c =
  t.tick <- t.tick + 1;
  c.stamp <- t.tick

let allocate t =
  let id = t.page_count in
  t.page_count <- t.page_count + 1;
  (match t.backend with
  | Memory pages ->
      let arr = !pages in
      let cap = Array.length arr in
      if id >= cap then begin
        let ncap = max 64 (cap * 2) in
        let narr = Array.make ncap Bytes.empty in
        Array.blit arr 0 narr 0 cap;
        pages := narr
      end;
      !pages.(id) <- Bytes.make t.page_size '\x00'
  | File { fd; cache_pages } ->
      if Hashtbl.length t.cache >= cache_pages then evict_one t fd;
      let c = { buf = Bytes.make t.page_size '\x00'; dirty = true; stamp = 0 } in
      touch t c;
      Hashtbl.replace t.cache id c);
  id

let check_id t id =
  if id < 0 || id >= t.page_count then
    invalid_arg (Printf.sprintf "Pager: page id %d out of range [0,%d)" id t.page_count)

let read t id =
  check_id t id;
  match t.backend with
  | Memory pages ->
      t.cache_hits <- t.cache_hits + 1;
      !pages.(id)
  | File { fd; cache_pages } -> (
      match Hashtbl.find_opt t.cache id with
      | Some c ->
          t.cache_hits <- t.cache_hits + 1;
          touch t c;
          c.buf
      | None ->
          t.cache_misses <- t.cache_misses + 1;
          if Hashtbl.length t.cache >= cache_pages then evict_one t fd;
          let buf = Bytes.create t.page_size in
          physical_read t fd id buf;
          let c = { buf; dirty = false; stamp = 0 } in
          touch t c;
          Hashtbl.replace t.cache id c;
          buf)

let write t id buf =
  check_id t id;
  if Bytes.length buf <> t.page_size then
    invalid_arg "Pager.write: buffer length mismatch";
  match t.backend with
  | Memory pages ->
      if not (!pages.(id) == buf) then Bytes.blit buf 0 !pages.(id) 0 t.page_size
  | File { fd; cache_pages } -> (
      match Hashtbl.find_opt t.cache id with
      | Some c ->
          if not (c.buf == buf) then Bytes.blit buf 0 c.buf 0 t.page_size;
          c.dirty <- true;
          touch t c
      | None ->
          if Hashtbl.length t.cache >= cache_pages then evict_one t fd;
          let c = { buf = Bytes.copy buf; dirty = true; stamp = 0 } in
          touch t c;
          Hashtbl.replace t.cache id c)

let flush t =
  match t.backend with
  | Memory _ -> ()
  | File { fd; _ } ->
      Hashtbl.iter
        (fun id c ->
          if c.dirty then begin
            physical_write t fd id c.buf;
            c.dirty <- false
          end)
        t.cache;
      write_header t

let close t =
  flush t;
  match t.backend with
  | Memory pages -> pages := [||]
  | File { fd; _ } -> Unix.close fd

let stats t =
  {
    physical_reads = t.physical_reads;
    physical_writes = t.physical_writes;
    cache_hits = t.cache_hits;
    cache_misses = t.cache_misses;
  }
