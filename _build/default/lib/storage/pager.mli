(** Paged storage with an LRU page cache.

    This is the lowest layer of the BerkeleyDB-replacement substrate:
    fixed-size pages addressed by page id, backed either by an ordinary
    file or by memory (for tests and small corpora). All B+tree nodes
    live in pages obtained here, and the pager records read/write/hit
    statistics so experiments can report I/O work. *)

type t

type stats = {
  physical_reads : int;  (** pages fetched from the backing store *)
  physical_writes : int;  (** pages flushed to the backing store *)
  cache_hits : int;
  cache_misses : int;
}

val create_memory : ?page_size:int -> unit -> t
(** Purely in-memory pager; pages live until {!close}. *)

val create_file : ?page_size:int -> ?cache_pages:int -> string -> t
(** [create_file path] truncates/creates [path]. [cache_pages] bounds
    the number of resident pages (default 4096). *)

val open_file : ?cache_pages:int -> string -> t
(** Re-open a pager file written by {!create_file}; the page size is
    read from the header. @raise Failure on a bad header. *)

val page_size : t -> int
val page_count : t -> int

val allocate : t -> int
(** Extend the store by one zeroed page and return its id. *)

val read : t -> int -> bytes
(** [read t id] returns the page contents. The returned buffer is the
    cached copy: mutating it without a subsequent {!write} is a bug.
    @raise Invalid_argument on an out-of-range id. *)

val write : t -> int -> bytes -> unit
(** Replace page [id]. The buffer length must equal [page_size t]. *)

val set_root : t -> int -> unit
(** Persist a distinguished page id (the B+tree root) in the header. *)

val get_root : t -> int
(** Last value passed to {!set_root}, or [-1]. *)

val stats : t -> stats
val flush : t -> unit
val close : t -> unit
