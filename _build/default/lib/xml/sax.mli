(** Streaming (SAX-style) XML parser with byte positions.

    TReX identifies an element by the byte position where it {e ends}
    plus its length, and a term occurrence by its byte offset; both come
    straight from this parser's event positions. The parser handles the
    XML subset that document collections such as INEX use: prolog,
    comments, processing instructions, CDATA, attributes, predefined and
    numeric entities. DTDs are skipped, not validated. *)

type event =
  | Start_element of { tag : string; attrs : (string * string) list; start_pos : int }
      (** [start_pos] is the offset of the opening ['<']. *)
  | End_element of { tag : string; end_pos : int }
      (** [end_pos] is the offset one past the closing ['>'] (for an
          empty-element tag, one past its ['>']). *)
  | Text of { content : string; start_pos : int }
      (** Entity-resolved character data (CDATA included); [start_pos]
          is the offset of the first raw byte. *)

exception Malformed of { message : string; pos : int }

val parse : string -> (event -> unit) -> unit
(** Parse a complete document, invoking the callback in document order.
    Events for whitespace-only text between elements are suppressed.
    @raise Malformed with a message and byte offset on invalid input. *)

val tag_is_name : string -> bool
(** Whether a string is a valid XML name (used by generators/tests). *)
