type event =
  | Start_element of { tag : string; attrs : (string * string) list; start_pos : int }
  | End_element of { tag : string; end_pos : int }
  | Text of { content : string; start_pos : int }

exception Malformed of { message : string; pos : int }

let fail pos fmt = Printf.ksprintf (fun message -> raise (Malformed { message; pos })) fmt

let is_space = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let is_name_start = function
  | 'A' .. 'Z' | 'a' .. 'z' | '_' | ':' -> true
  | c -> Char.code c >= 0x80

let is_name_char c =
  is_name_start c || (match c with '0' .. '9' | '-' | '.' -> true | _ -> false)

let tag_is_name s =
  String.length s > 0 && is_name_start s.[0] && String.for_all is_name_char s

type state = { src : string; mutable pos : int; emit : event -> unit }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let looking_at st lit =
  let n = String.length lit in
  st.pos + n <= String.length st.src && String.sub st.src st.pos n = lit

let expect st lit =
  if looking_at st lit then st.pos <- st.pos + String.length lit
  else fail st.pos "expected %S" lit

let skip_spaces st =
  while st.pos < String.length st.src && is_space st.src.[st.pos] do
    st.pos <- st.pos + 1
  done

let read_name st =
  let start = st.pos in
  (match peek st with
  | Some c when is_name_start c -> st.pos <- st.pos + 1
  | Some c -> fail st.pos "invalid name start character %C" c
  | None -> fail st.pos "unexpected end of input in name");
  while st.pos < String.length st.src && is_name_char st.src.[st.pos] do
    st.pos <- st.pos + 1
  done;
  String.sub st.src start (st.pos - start)

let skip_until st lit =
  let n = String.length st.src in
  let continue = ref true in
  while !continue do
    if st.pos >= n then fail st.pos "unterminated construct, expected %S" lit
    else if looking_at st lit then begin
      st.pos <- st.pos + String.length lit;
      continue := false
    end
    else st.pos <- st.pos + 1
  done

let read_attr_value st =
  match peek st with
  | Some (('"' | '\'') as q) ->
      st.pos <- st.pos + 1;
      let start = st.pos in
      (match String.index_from_opt st.src st.pos q with
      | Some close ->
          st.pos <- close + 1;
          let raw = String.sub st.src start (close - start) in
          (try Escape.unescape raw with Failure m -> fail start "%s" m)
      | None -> fail start "unterminated attribute value")
  | _ -> fail st.pos "attribute value must be quoted"

let read_attrs st =
  let rec go acc =
    skip_spaces st;
    match peek st with
    | Some c when is_name_start c ->
        let name = read_name st in
        skip_spaces st;
        expect st "=";
        skip_spaces st;
        let value = read_attr_value st in
        go ((name, value) :: acc)
    | Some _ | None -> List.rev acc
  in
  go []

(* Skip a <!DOCTYPE ...> declaration, tolerating a bracketed internal
   subset. *)
let skip_doctype st =
  let n = String.length st.src in
  let depth = ref 0 in
  let continue = ref true in
  while !continue do
    if st.pos >= n then fail st.pos "unterminated DOCTYPE"
    else begin
      (match st.src.[st.pos] with
      | '[' -> incr depth
      | ']' -> decr depth
      | '>' when !depth = 0 -> continue := false
      | _ -> ());
      st.pos <- st.pos + 1
    end
  done

(* Prolog / epilog content: spaces, comments, PIs, doctype. *)
let rec skip_misc st =
  skip_spaces st;
  if looking_at st "<?" then begin
    skip_until st "?>";
    skip_misc st
  end
  else if looking_at st "<!--" then begin
    skip_until st "-->";
    skip_misc st
  end
  else if looking_at st "<!DOCTYPE" then begin
    st.pos <- st.pos + 9;
    skip_doctype st;
    skip_misc st
  end

let parse src emit =
  let st = { src; pos = 0; emit } in
  let n = String.length src in
  let stack = ref [] in
  let buf = Buffer.create 256 in
  let text_start = ref 0 in
  let saw_root = ref false in
  let flush_text () =
    if Buffer.length buf > 0 then begin
      let content = Buffer.contents buf in
      Buffer.clear buf;
      if not (String.for_all is_space content) then
        st.emit (Text { content; start_pos = !text_start })
    end
  in
  let after_root_closes () =
    skip_misc st;
    if st.pos < n then fail st.pos "content after document element"
  in
  skip_misc st;
  if st.pos >= n then fail st.pos "no document element";
  if src.[st.pos] <> '<' then fail st.pos "text outside the document element";
  let running = ref true in
  while !running do
    if st.pos >= n then begin
      (match !stack with
      | (tag, open_pos) :: _ -> fail open_pos "element <%s> never closed" tag
      | [] -> ());
      running := false
    end
    else if src.[st.pos] = '<' then begin
      flush_text ();
      if looking_at st "<!--" then begin
        skip_until st "-->";
        text_start := st.pos
      end
      else if looking_at st "<![CDATA[" then begin
        let data_start = st.pos + 9 in
        st.pos <- data_start;
        skip_until st "]]>";
        let data = String.sub src data_start (st.pos - 3 - data_start) in
        if data <> "" then begin
          if Buffer.length buf = 0 then text_start := data_start;
          Buffer.add_string buf data
        end
      end
      else if looking_at st "<?" then begin
        skip_until st "?>";
        text_start := st.pos
      end
      else if looking_at st "</" then begin
        let close_start = st.pos in
        st.pos <- st.pos + 2;
        let tag = read_name st in
        skip_spaces st;
        expect st ">";
        (match !stack with
        | (open_tag, open_pos) :: rest ->
            if open_tag <> tag then
              fail close_start "mismatched </%s>, expected </%s> (opened at %d)"
                tag open_tag open_pos;
            stack := rest;
            st.emit (End_element { tag; end_pos = st.pos })
        | [] -> fail close_start "closing tag </%s> with no open element" tag);
        text_start := st.pos;
        if !stack = [] then begin
          after_root_closes ();
          running := false
        end
      end
      else begin
        let start_pos = st.pos in
        st.pos <- st.pos + 1;
        let tag = read_name st in
        let attrs = read_attrs st in
        skip_spaces st;
        if !stack = [] then begin
          if !saw_root then fail start_pos "multiple document elements";
          saw_root := true
        end;
        if looking_at st "/>" then begin
          st.pos <- st.pos + 2;
          st.emit (Start_element { tag; attrs; start_pos });
          st.emit (End_element { tag; end_pos = st.pos });
          text_start := st.pos;
          if !stack = [] then begin
            after_root_closes ();
            running := false
          end
        end
        else begin
          expect st ">";
          stack := (tag, start_pos) :: !stack;
          st.emit (Start_element { tag; attrs; start_pos });
          text_start := st.pos
        end
      end
    end
    else if !stack = [] then fail st.pos "text outside the document element"
    else begin
      if Buffer.length buf = 0 then text_start := st.pos;
      if src.[st.pos] = '&' then begin
        let semi =
          match String.index_from_opt src st.pos ';' with
          | Some j -> j
          | None -> fail st.pos "unterminated entity"
        in
        let raw = String.sub src st.pos (semi - st.pos + 1) in
        (try Buffer.add_string buf (Escape.unescape raw)
         with Failure m -> fail st.pos "%s" m);
        st.pos <- semi + 1
      end
      else begin
        (* Consume a run of plain text bytes in one go. *)
        let start = st.pos in
        while st.pos < n && src.[st.pos] <> '<' && src.[st.pos] <> '&' do
          st.pos <- st.pos + 1
        done;
        Buffer.add_substring buf src start (st.pos - start)
      end
    end
  done
