type node = Element of element | Text of { content : string; start_pos : int }

and element = {
  tag : string;
  attrs : (string * string) list;
  children : node list;
  start_pos : int;
  end_pos : int;
}

type doc = { root : element; source_length : int }

(* Frame of a partially-built element while its children are being
   parsed; children accumulate reversed. *)
type frame = {
  f_tag : string;
  f_attrs : (string * string) list;
  f_start : int;
  mutable f_children : node list;
}

let parse src =
  let stack = ref [] in
  let result = ref None in
  let handle = function
    | Sax.Start_element { tag; attrs; start_pos } ->
        stack := { f_tag = tag; f_attrs = attrs; f_start = start_pos; f_children = [] } :: !stack
    | Sax.Text { content; start_pos } -> (
        match !stack with
        | frame :: _ -> frame.f_children <- Text { content; start_pos } :: frame.f_children
        | [] -> ())
    | Sax.End_element { end_pos; _ } -> (
        match !stack with
        | frame :: rest ->
            let el =
              {
                tag = frame.f_tag;
                attrs = frame.f_attrs;
                children = List.rev frame.f_children;
                start_pos = frame.f_start;
                end_pos;
              }
            in
            stack := rest;
            (match rest with
            | parent :: _ -> parent.f_children <- Element el :: parent.f_children
            | [] -> result := Some el)
        | [] -> assert false)
  in
  Sax.parse src handle;
  match !result with
  | Some root -> { root; source_length = String.length src }
  | None -> assert false (* Sax.parse raises before this can happen *)

let length el = el.end_pos - el.start_pos

let attr el name =
  List.find_map (fun (k, v) -> if k = name then Some v else None) el.attrs

let text_content el =
  let b = Buffer.create 128 in
  let rec go node =
    match node with
    | Text { content; _ } ->
        if Buffer.length b > 0 then Buffer.add_char b ' ';
        Buffer.add_string b content
    | Element e -> List.iter go e.children
  in
  List.iter go el.children;
  Buffer.contents b

let iter_elements doc f =
  let rec go path el =
    let path = el.tag :: path in
    f (List.rev path) el;
    List.iter
      (function Element child -> go path child | Text _ -> ())
      el.children
  in
  go [] doc.root

let fold_elements doc ~init ~f =
  let acc = ref init in
  iter_elements doc (fun path el -> acc := f !acc path el);
  !acc

let count_elements doc = fold_elements doc ~init:0 ~f:(fun n _ _ -> n + 1)

let find_all doc pred =
  fold_elements doc ~init:[] ~f:(fun acc _ el ->
      if pred el then el :: acc else acc)
  |> List.rev

let to_string ?(indent = false) el =
  let b = Buffer.create 1024 in
  let rec go depth el =
    if indent && Buffer.length b > 0 then begin
      Buffer.add_char b '\n';
      Buffer.add_string b (String.make (depth * 2) ' ')
    end;
    Buffer.add_char b '<';
    Buffer.add_string b el.tag;
    List.iter
      (fun (k, v) ->
        Buffer.add_char b ' ';
        Buffer.add_string b k;
        Buffer.add_string b "=\"";
        Buffer.add_string b (Escape.escape_attr v);
        Buffer.add_char b '"')
      el.attrs;
    if el.children = [] then Buffer.add_string b "/>"
    else begin
      Buffer.add_char b '>';
      List.iter
        (function
          | Text { content; _ } -> Buffer.add_string b (Escape.escape_text content)
          | Element child -> go (depth + 1) child)
        el.children;
      if indent then begin
        Buffer.add_char b '\n';
        Buffer.add_string b (String.make (depth * 2) ' ')
      end;
      Buffer.add_string b "</";
      Buffer.add_string b el.tag;
      Buffer.add_char b '>'
    end
  in
  go 0 el;
  Buffer.contents b

let rec equal_structure a b =
  a.tag = b.tag
  && a.attrs = b.attrs
  && List.length a.children = List.length b.children
  && List.for_all2
       (fun x y ->
         match (x, y) with
         | Text t1, Text t2 -> t1.content = t2.content
         | Element e1, Element e2 -> equal_structure e1 e2
         | Text _, Element _ | Element _, Text _ -> false)
       a.children b.children
