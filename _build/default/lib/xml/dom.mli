(** In-memory XML trees built from {!Sax} events.

    Every element records where it starts and ends in the source bytes —
    the (endpos, length) pair is exactly how TReX's [Elements] table
    identifies elements within a document. *)

type node = Element of element | Text of { content : string; start_pos : int }

and element = {
  tag : string;
  attrs : (string * string) list;
  children : node list;
  start_pos : int;  (** byte offset of the opening ['<'] *)
  end_pos : int;  (** byte offset one past the closing ['>'] *)
}

type doc = { root : element; source_length : int }

val parse : string -> doc
(** @raise Sax.Malformed on invalid input. *)

val length : element -> int
(** [end_pos - start_pos]: the element's length in source bytes. *)

val attr : element -> string -> string option

val text_content : element -> string
(** Concatenated descendant text, in document order, space-joined. *)

val iter_elements : doc -> (string list -> element -> unit) -> unit
(** Visit every element in document order with its label path from the
    root ({e including} the element's own tag, root tag first). *)

val fold_elements : doc -> init:'a -> f:('a -> string list -> element -> 'a) -> 'a

val count_elements : doc -> int

val find_all : doc -> (element -> bool) -> element list
(** Document-order list of elements satisfying the predicate. *)

val to_string : ?indent:bool -> element -> string
(** Serialize. Positions are not preserved: re-parsing the output gives
    a structurally equal tree with fresh positions. *)

val equal_structure : element -> element -> bool
(** Structural equality ignoring positions (used in round-trip tests). *)
