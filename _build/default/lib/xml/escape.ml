let escape_gen ~quot s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string b "&amp;"
      | '<' -> Buffer.add_string b "&lt;"
      | '>' -> Buffer.add_string b "&gt;"
      | '"' when quot -> Buffer.add_string b "&quot;"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let escape_text s = escape_gen ~quot:false s
let escape_attr s = escape_gen ~quot:true s

let add_utf8 b code =
  if code < 0x80 then Buffer.add_char b (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
  end
  else if code < 0x10000 then begin
    Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char b (Char.chr (0xF0 lor (code lsr 18)));
    Buffer.add_char b (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
  end

let unescape s =
  let n = String.length s in
  let b = Buffer.create n in
  let rec go i =
    if i >= n then ()
    else if s.[i] <> '&' then begin
      Buffer.add_char b s.[i];
      go (i + 1)
    end
    else begin
      let j =
        match String.index_from_opt s i ';' with
        | Some j -> j
        | None -> failwith "Escape.unescape: unterminated entity"
      in
      let name = String.sub s (i + 1) (j - i - 1) in
      (match name with
      | "amp" -> Buffer.add_char b '&'
      | "lt" -> Buffer.add_char b '<'
      | "gt" -> Buffer.add_char b '>'
      | "quot" -> Buffer.add_char b '"'
      | "apos" -> Buffer.add_char b '\''
      | _ when String.length name >= 2 && name.[0] = '#' ->
          let code =
            try
              if name.[1] = 'x' || name.[1] = 'X' then
                int_of_string ("0x" ^ String.sub name 2 (String.length name - 2))
              else int_of_string (String.sub name 1 (String.length name - 1))
            with Failure _ ->
              failwith ("Escape.unescape: bad character reference &" ^ name ^ ";")
          in
          add_utf8 b code
      | _ -> failwith ("Escape.unescape: unknown entity &" ^ name ^ ";"));
      go (j + 1)
    end
  in
  go 0;
  Buffer.contents b
