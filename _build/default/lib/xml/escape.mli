(** XML character-data escaping and entity resolution. *)

val escape_text : string -> string
(** Escape [& < >] for element content. *)

val escape_attr : string -> string
(** Escape ampersand, angle brackets and double quotes for
    double-quoted attribute values. *)

val unescape : string -> string
(** Resolve the predefined entities ([&amp;amp; &amp;lt; &amp;gt;
    &amp;quot; &amp;apos;]) and numeric character references (decimal
    and hex; non-ASCII code points are emitted as UTF-8).
    @raise Failure on an unterminated or unknown entity. *)
