lib/xml/escape.mli:
