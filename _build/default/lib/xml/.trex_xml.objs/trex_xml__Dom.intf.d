lib/xml/dom.mli:
