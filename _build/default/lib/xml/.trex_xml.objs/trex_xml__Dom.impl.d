lib/xml/dom.ml: Buffer Escape List Sax String
