lib/xml/sax.mli:
