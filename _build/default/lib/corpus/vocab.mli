(** Synthetic vocabulary with planted query terms.

    The paper's experiments depend on queries whose terms differ wildly
    in frequency (Q270's terms yield 92k answers, Q233's 458). We build
    a Zipf-distributed vocabulary of pseudo-words and {e plant} the
    paper's query terms at chosen Zipf ranks, so each query's
    selectivity class survives the substitution of synthetic text for
    INEX documents. Topic word-sets then boost co-occurrence inside
    documents assigned to a topic. *)

type t

val create : ?size:int -> seed:int -> unit -> t
(** [size] is the total vocabulary (default 1500). *)

val size : t -> int

val sample : t -> Trex_util.Prng.t -> string
(** Zipf-distributed word. *)

val word_at_rank : t -> int -> string
(** Rank 0 is the most frequent word. *)

val planted_rank : string -> int option
(** The rank a paper query term is planted at, if it is one. *)

type topic = {
  name : string;
  words : string list;  (** boosted words; includes planted terms *)
}

val topics : t -> topic list
(** The fixed topic set (semantic-web, verification, audio, ...). *)

val topic_named : t -> string -> topic
(** @raise Not_found for unknown names. *)
