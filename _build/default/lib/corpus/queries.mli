(** The seven INEX queries of the paper's Table 1. *)

type collection_id = Ieee | Wikipedia

type t = {
  id : string;  (** the INEX topic id the paper uses, e.g. "202" *)
  nexi : string;
  collection : collection_id;
  description : string;
}

val all : t list
(** Queries 202, 203, 233, 260, 270 (IEEE) and 290, 292 (Wikipedia), in
    Table 1 order, with the paper's NEXI expressions verbatim. *)

val find : string -> t
(** @raise Not_found for an unknown id. *)

val for_collection : collection_id -> t list
