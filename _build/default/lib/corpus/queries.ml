type collection_id = Ieee | Wikipedia

type t = {
  id : string;
  nexi : string;
  collection : collection_id;
  description : string;
}

let all =
  [
    {
      id = "202";
      nexi = "//article[about(., ontologies)]//sec[about(., ontologies case study)]";
      collection = Ieee;
      description = "sections with ontology case studies in ontology articles";
    };
    {
      id = "203";
      nexi = "//sec[about(., code signing verification)]";
      collection = Ieee;
      description = "sections on code-signing verification";
    };
    {
      id = "233";
      nexi = "//article[about(.//bdy, synthesizers) and about(.//bdy, music)]";
      collection = Ieee;
      description = "articles on music synthesizers";
    };
    {
      id = "260";
      nexi = "//bdy//*[about(., model checking state space explosion)]";
      collection = Ieee;
      description = "any body element about state-space explosion in model checking";
    };
    {
      id = "270";
      nexi = "//article//sec[about(., introduction information retrieval)]";
      collection = Ieee;
      description = "introductory IR sections";
    };
    {
      id = "290";
      nexi = "//article[about(., genetic algorithm)]";
      collection = Wikipedia;
      description = "articles on genetic algorithms";
    };
    {
      id = "292";
      nexi =
        "//article//figure[about(., Renaissance painting Italian Flemish -French -German)]";
      collection = Wikipedia;
      description = "figures of Italian/Flemish Renaissance painting";
    };
  ]

let find id =
  match List.find_opt (fun q -> q.id = id) all with
  | Some q -> q
  | None -> raise Not_found

let for_collection c = List.filter (fun q -> q.collection = c) all
