lib/corpus/gen.ml: Array Buffer List Printf Seq String Trex_summary Trex_util Trex_xml Vocab
