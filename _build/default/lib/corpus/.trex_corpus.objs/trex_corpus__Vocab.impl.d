lib/corpus/vocab.ml: Array Buffer Hashtbl List Printf Trex_util
