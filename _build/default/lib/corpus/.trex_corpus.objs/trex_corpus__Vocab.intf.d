lib/corpus/vocab.mli: Trex_util
