lib/corpus/queries.ml: List
