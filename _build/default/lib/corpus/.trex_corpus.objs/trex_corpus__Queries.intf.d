lib/corpus/queries.mli:
