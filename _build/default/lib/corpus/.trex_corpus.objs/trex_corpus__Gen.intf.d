lib/corpus/gen.mli: Seq Trex_summary Vocab
