module Prng = Trex_util.Prng
module Zipf = Trex_util.Zipf

(* Paper query terms and the Zipf rank each is planted at. Low rank =
   frequent. The classes mirror the paper's answer counts: Q270's terms
   (introduction/information/retrieval) are common, Q233's
   (synthesizers) rare. *)
let planted =
  [
    ("information", 25); ("model", 30); ("state", 35); ("introduction", 40);
    ("space", 45); ("case", 50); ("study", 55); ("retrieval", 60);
    ("algorithm", 70); ("evaluation", 80); ("query", 90); ("xml", 100);
    ("checking", 120); ("music", 150); ("verification", 300);
    (* "code" sits low so Q203's answer count stays small relative to
       Q270's, as in the paper's Table 1. *)
    ("code", 520);
    ("painting", 350); ("german", 370); ("french", 380); ("genetic", 400);
    ("italian", 450); ("explosion", 500); ("ontologies", 650);
    ("signing", 700); ("renaissance", 800); ("synthesizers", 900);
    ("flemish", 1000);
  ]

let planted_rank w = List.assoc_opt w planted

type topic = { name : string; words : string list }

let topic_specs =
  [
    ("semantic-web", [ "ontologies"; "case"; "study"; "xml"; "query" ]);
    ("xml-db", [ "xml"; "query"; "evaluation"; "retrieval"; "model" ]);
    ("security", [ "code"; "signing"; "verification"; "state" ]);
    ( "verification",
      [ "model"; "checking"; "state"; "space"; "explosion"; "verification" ] );
    ("ir", [ "introduction"; "information"; "retrieval"; "evaluation"; "query" ]);
    ("audio", [ "synthesizers"; "music"; "information" ]);
    ("evolutionary", [ "genetic"; "algorithm"; "space"; "evaluation" ]);
    ( "art",
      [ "renaissance"; "painting"; "italian"; "flemish"; "french"; "german" ] );
    ("systems", [ "code"; "state"; "model"; "information" ]);
    ("theory", [ "algorithm"; "space"; "case"; "model" ]);
  ]

type t = { words : string array; zipf : Zipf.t; topics : topic list }

let vowels = [| "a"; "e"; "i"; "o"; "u"; "ai"; "ou" |]

let consonants =
  [| "b"; "c"; "d"; "f"; "g"; "h"; "j"; "k"; "l"; "m"; "n"; "p"; "qu"; "r";
     "s"; "t"; "v"; "w"; "x"; "z"; "st"; "tr"; "pl"; "br" |]

let pseudo_word rng =
  let syllables = 2 + Prng.int rng 3 in
  let b = Buffer.create 12 in
  for _ = 1 to syllables do
    Buffer.add_string b (Prng.pick rng consonants);
    Buffer.add_string b (Prng.pick rng vowels)
  done;
  Buffer.contents b

let create ?(size = 1500) ~seed () =
  let max_rank = List.fold_left (fun m (_, r) -> max m r) 0 planted in
  if size <= max_rank then
    invalid_arg
      (Printf.sprintf "Vocab.create: size %d must exceed highest planted rank %d"
         size max_rank);
  let rng = Prng.create seed in
  let words = Array.make size "" in
  List.iter (fun (w, rank) -> words.(rank) <- w) planted;
  let seen = Hashtbl.create size in
  List.iter (fun (w, _) -> Hashtbl.add seen w ()) planted;
  for i = 0 to size - 1 do
    if words.(i) = "" then begin
      let rec fresh () =
        let w = pseudo_word rng in
        if Hashtbl.mem seen w then fresh () else w
      in
      let w = fresh () in
      Hashtbl.add seen w ();
      words.(i) <- w
    end
  done;
  let topics = List.map (fun (name, words) -> { name; words }) topic_specs in
  { words; zipf = Zipf.create ~exponent:1.05 size; topics }

let size t = Array.length t.words
let sample t rng = t.words.(Zipf.sample t.zipf rng)

let word_at_rank t rank =
  if rank < 0 || rank >= Array.length t.words then
    invalid_arg "Vocab.word_at_rank: rank out of range";
  t.words.(rank)

let topics t = t.topics

let topic_named t name =
  match List.find_opt (fun topic -> topic.name = name) t.topics with
  | Some topic -> topic
  | None -> raise Not_found
