(** Synthetic document collections standing in for INEX IEEE 2005 and
    INEX Wikipedia 2006 (see DESIGN.md for the substitution argument).

    Both generators are deterministic in the seed: equal parameters give
    byte-identical collections. Documents are well-formed XML whose
    element grammar mimics the respective collection (IEEE:
    books/journal/article/fm/bdy/sec/ss1/ss2/p/ip1/fig/...; Wikipedia:
    article/name/body/section/figure/caption/...), with topic-skewed
    text from {!Vocab} so the seven paper queries have answers of the
    right relative magnitudes. *)

type collection = {
  name : string;
  alias : Trex_summary.Alias.t;
      (** tag synonym mapping (the INEX alias list analogue) *)
  doc_count : int;
  vocab : Vocab.t;
  docs : unit -> (string * string) Seq.t;
      (** fresh (name, xml) sequence; can be re-walked *)
  topics : int -> string list;
      (** ground truth: topic names document [i] was generated around,
          usable as synthetic relevance judgments (see
          [Trex_relevance]) *)
}

val ieee : ?doc_count:int -> ?seed:int -> unit -> collection
(** IEEE-journal-like articles (default 400 documents, seed 42). *)

val wikipedia : ?doc_count:int -> ?seed:int -> unit -> collection
(** Wikipedia-like pages: shorter, flatter, with figures (default 700
    documents, seed 43). *)
