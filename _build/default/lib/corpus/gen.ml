module Prng = Trex_util.Prng
module Alias = Trex_summary.Alias

type collection = {
  name : string;
  alias : Alias.t;
  doc_count : int;
  vocab : Vocab.t;
  docs : unit -> (string * string) Seq.t;
  topics : int -> string list;
      (* ground truth: the topic names document [i] was generated
         around — the basis for synthetic relevance judgments *)
}

(* ---- text generation ---- *)

(* A document's topical context: with probability [theme_rate], a token
   is drawn from the document's topics instead of the global Zipf
   vocabulary, concentrating query terms in on-topic documents. *)
type ctx = {
  vocab : Vocab.t;
  topic_names : string list;
  topic_words : string array;
  theme_rate : float;
}

let make_ctx vocab rng ~theme_rate =
  let topics = Array.of_list (Vocab.topics vocab) in
  let n_topics = 1 + Prng.int rng 2 in
  let names = ref [] and words = ref [] in
  for _ = 1 to n_topics do
    let t = Prng.pick rng topics in
    names := t.Vocab.name :: !names;
    words := t.Vocab.words @ !words
  done;
  {
    vocab;
    topic_names = List.sort_uniq String.compare !names;
    topic_words = Array.of_list !words;
    theme_rate;
  }

let token ctx rng =
  if Array.length ctx.topic_words > 0 && Prng.float rng 1.0 < ctx.theme_rate then
    Prng.pick rng ctx.topic_words
  else Vocab.sample ctx.vocab rng

let sentence ctx rng ~min_len ~max_len =
  let n = min_len + Prng.int rng (max 1 (max_len - min_len + 1)) in
  let b = Buffer.create (n * 8) in
  for i = 1 to n do
    if i > 1 then Buffer.add_char b ' ';
    Buffer.add_string b (token ctx rng)
  done;
  Buffer.contents b

(* ---- tiny XML writer ---- *)

type xml = El of string * xml list | Txt of string

let rec emit buf = function
  | Txt s -> Buffer.add_string buf (Trex_xml.Escape.escape_text s)
  | El (tag, children) ->
      Buffer.add_char buf '<';
      Buffer.add_string buf tag;
      if children = [] then Buffer.add_string buf "/>"
      else begin
        Buffer.add_char buf '>';
        List.iter (emit buf) children;
        Buffer.add_string buf "</";
        Buffer.add_string buf tag;
        Buffer.add_char buf '>'
      end

let doc_string root =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "<?xml version=\"1.0\"?>\n";
  emit buf root;
  Buffer.contents buf

(* ---- IEEE-like articles ---- *)

let ieee_alias =
  Alias.of_list [ ("ss1", "sec"); ("ss2", "sec"); ("ip1", "p"); ("ip2", "p"); ("atl", "ti") ]

let ieee_paragraph ctx rng =
  let tag = Prng.pick rng [| "p"; "p"; "p"; "ip1"; "ip2" |] in
  El (tag, [ Txt (sentence ctx rng ~min_len:18 ~max_len:55) ])

let ieee_figure ctx rng =
  El ("fig", [ El ("fgc", [ Txt (sentence ctx rng ~min_len:5 ~max_len:12) ]) ])

let ieee_table ctx rng =
  El ("tbl", [ El ("tcap", [ Txt (sentence ctx rng ~min_len:4 ~max_len:9) ]) ])

let ieee_list ctx rng =
  El
    ( "list",
      List.init
        (2 + Prng.int rng 3)
        (fun _ -> El ("li", [ Txt (sentence ctx rng ~min_len:4 ~max_len:12) ])) )

let ieee_footnote ctx rng =
  El ("fn", [ Txt (sentence ctx rng ~min_len:5 ~max_len:12) ])

let rec ieee_section ctx rng ~depth =
  let tag = match depth with 0 -> "sec" | 1 -> "ss1" | _ -> "ss2" in
  let title = El ("st", [ Txt (sentence ctx rng ~min_len:3 ~max_len:7) ]) in
  let n_paras = 2 + Prng.int rng 5 in
  let paras = List.init n_paras (fun _ -> ieee_paragraph ctx rng) in
  let extras =
    List.concat
      [
        (if Prng.int rng 4 = 0 then [ ieee_figure ctx rng ] else []);
        (if Prng.int rng 6 = 0 then [ ieee_table ctx rng ] else []);
        (if Prng.int rng 5 = 0 then [ ieee_list ctx rng ] else []);
        (if Prng.int rng 7 = 0 then [ ieee_footnote ctx rng ] else []);
      ]
  in
  let subsections =
    if depth < 2 && Prng.int rng 3 = 0 then
      List.init (1 + Prng.int rng 2) (fun _ -> ieee_section ctx rng ~depth:(depth + 1))
    else []
  in
  El (tag, (title :: paras) @ extras @ subsections)

let ieee_article vocab rng =
  let ctx = make_ctx vocab rng ~theme_rate:0.18 in
  let title_ctx = { ctx with theme_rate = 0.5 } in
  let authors =
    List.init
      (1 + Prng.int rng 3)
      (fun _ ->
        El
          ( "au",
            [
              El ("fnm", [ Txt (token ctx rng) ]);
              El ("snm", [ Txt (token ctx rng) ]);
            ] ))
  in
  let fm =
    El
      ( "fm",
        El ("ti", [ El ("atl", [ Txt (sentence title_ctx rng ~min_len:4 ~max_len:9) ]) ])
        :: authors
        @ [ El ("abs", [ El ("p", [ Txt (sentence title_ctx rng ~min_len:20 ~max_len:45) ]) ]) ]
      )
  in
  let n_secs = 3 + Prng.int rng 5 in
  let bdy = El ("bdy", List.init n_secs (fun _ -> ieee_section ctx rng ~depth:0)) in
  let bib =
    El
      ( "bib",
        List.init
          (3 + Prng.int rng 8)
          (fun _ -> El ("bb", [ Txt (sentence ctx rng ~min_len:6 ~max_len:14) ])) )
  in
  let bm_children =
    (if Prng.int rng 5 = 0 then
       [ El ("app", [ ieee_section ctx rng ~depth:0 ]) ]
     else [])
    @ [ bib ]
  in
  El
    ( "books",
      [ El ("journal", [ El ("article", [ fm; bdy; El ("bm", bm_children) ]) ]) ] )

let ieee ?(doc_count = 400) ?(seed = 42) () =
  let vocab = Vocab.create ~seed:(seed * 7919) () in
  let docs () =
    Seq.init doc_count (fun i ->
        let rng = Prng.create ((seed * 1_000_003) + i) in
        (Printf.sprintf "ieee-%05d.xml" i, doc_string (ieee_article vocab rng)))
  in
  (* Replaying the per-document PRNG reproduces the topic draw that
     [ieee_article] makes first. *)
  let topics i =
    let rng = Prng.create ((seed * 1_000_003) + i) in
    (make_ctx vocab rng ~theme_rate:0.18).topic_names
  in
  { name = "synthetic-ieee"; alias = ieee_alias; doc_count; vocab; docs; topics }

(* ---- Wikipedia-like pages ---- *)

let wiki_alias = Alias.of_list [ ("ss", "section"); ("caption2", "caption") ]

let wiki_figure ctx rng =
  El
    ( "figure",
      [
        El ("image", [ Txt (token ctx rng) ]);
        El ("caption", [ Txt (sentence ctx rng ~min_len:4 ~max_len:12) ]);
      ] )

let rec wiki_section ctx rng ~depth =
  let title = El ("title", [ Txt (sentence ctx rng ~min_len:2 ~max_len:5) ]) in
  let paras =
    List.init
      (1 + Prng.int rng 4)
      (fun _ -> El ("p", [ Txt (sentence ctx rng ~min_len:15 ~max_len:45) ]))
  in
  let figures =
    if Prng.int rng 3 = 0 then List.init (1 + Prng.int rng 2) (fun _ -> wiki_figure ctx rng)
    else []
  in
  let template =
    if Prng.int rng 8 = 0 then [ El ("template", [ Txt (token ctx rng) ]) ] else []
  in
  let subsections =
    if depth < 2 && Prng.int rng 3 = 0 then
      List.init (1 + Prng.int rng 2) (fun _ -> wiki_section ctx rng ~depth:(depth + 1))
    else []
  in
  El ("section", (title :: paras) @ figures @ template @ subsections)

let wiki_infobox ctx rng =
  El
    ( "infobox",
      [
        El ("caption", [ Txt (sentence ctx rng ~min_len:2 ~max_len:6) ]);
        wiki_figure ctx rng;
      ] )

let wiki_page vocab rng =
  let ctx = make_ctx vocab rng ~theme_rate:0.16 in
  let name = El ("name", [ Txt (sentence ctx rng ~min_len:1 ~max_len:4) ]) in
  let n_secs = 2 + Prng.int rng 4 in
  let lead =
    (if Prng.int rng 3 = 0 then [ wiki_infobox ctx rng ] else [])
    @ (if Prng.int rng 4 = 0 then [ wiki_figure ctx rng ] else [])
    @ [ El ("p", [ Txt (sentence ctx rng ~min_len:20 ~max_len:50) ]) ]
  in
  let body =
    El ("body", lead @ List.init n_secs (fun _ -> wiki_section ctx rng ~depth:0))
  in
  El ("article", [ name; body ])

let wikipedia ?(doc_count = 700) ?(seed = 43) () =
  let vocab = Vocab.create ~seed:(seed * 7919) () in
  let docs () =
    Seq.init doc_count (fun i ->
        let rng = Prng.create ((seed * 2_000_003) + i) in
        (Printf.sprintf "wiki-%06d.xml" i, doc_string (wiki_page vocab rng)))
  in
  let topics i =
    let rng = Prng.create ((seed * 2_000_003) + i) in
    (make_ctx vocab rng ~theme_rate:0.16).topic_names
  in
  { name = "synthetic-wikipedia"; alias = wiki_alias; doc_count; vocab; docs; topics }
