(** Key and row codecs for the TReX tables.

    The paper's schemas, with underlined primary keys, are:

    - [Elements(SID, docid, endpos, length)]
    - [PostingLists(token, docid, offset, postingdataentry)]
    - [Documents(docid, name, bytes, elements)] (ours, for stats)
    - [Terms(token, df, cf)] (ours, for scoring)

    Keys are built with order-preserving codecs so B+tree order equals
    schema order; long posting lists are chunked over several rows keyed
    by their first position, exactly as the paper describes. *)

module Elements : sig
  val name : string
  val key : sid:int -> docid:int -> endpos:int -> string
  val sid_prefix : int -> string
  val encode : Types.element -> string * string
  (** Row (key, value); the value carries the length. *)

  val decode : string -> string -> Types.element
end

module Posting_lists : sig
  val name : string
  val token_prefix : string -> string
  val key : token:string -> first:Types.pos -> string

  val encode_chunk : token:string -> Types.pos list -> string * string
  (** One row holding consecutive positions; the chunk key is the first
      position. The list must be non-empty and position-sorted. *)

  val decode_chunk : string -> Types.pos list
end

module Documents : sig
  type row = { docid : int; name : string; bytes : int; elements : int }

  val name : string
  val encode : row -> string * string
  val decode : string -> string -> row
end

module Terms : sig
  type row = { token : string; df : int; cf : int }
  (** [df] documents containing the token, [cf] total occurrences. *)

  val name : string
  val encode : row -> string * string
  val decode : string -> string -> row
end

val meta_table : string
(** One-row-per-key table for index metadata (summary blob, analyzer
    configuration, corpus statistics). *)
