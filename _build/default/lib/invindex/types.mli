(** Identifiers shared by the index and retrieval layers. *)

(** A token occurrence: document and byte offset of the token start.
    Totally ordered by (docid, offset) — document order. *)
type pos = { docid : int; offset : int }

val compare_pos : pos -> pos -> int

val m_pos : pos
(** The paper's maximal dummy position: strictly greater than any real
    position; appended to posting lists so iterators can signal
    exhaustion uniformly. *)

val is_m_pos : pos -> bool
val pp_pos : Format.formatter -> pos -> unit

(** An element as TReX identifies it: summary node, document, end
    position and length. [start = endpos - length]. *)
type element = { sid : int; docid : int; endpos : int; length : int }

val start_pos : element -> int
val element_end : element -> pos
(** The (docid, endpos) pair — the element's position for iterator
    ordering. *)

val dummy_element : element
(** End position [m_pos], length 0 — returned by extent iterators when
    the extent is exhausted (as in the paper's ERA). *)

val is_dummy : element -> bool

val contains : element -> pos -> bool
(** [contains e p]: the token starting at [p] lies strictly inside
    [e]'s source span (same document, start < offset < end). *)

val element_contains_element : outer:element -> inner:element -> bool
(** Same document and the inner span lies within the outer span (used
    by the structured NEXI evaluator to join support paths). *)

val compare_element : element -> element -> int
(** Orders by (docid, endpos, length, sid): document order of end
    positions. *)

val pp_element : Format.formatter -> element -> unit
