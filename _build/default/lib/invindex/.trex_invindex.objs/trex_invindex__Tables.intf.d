lib/invindex/tables.mli: Types
