lib/invindex/index.mli: Seq Tables Trex_storage Trex_summary Trex_text Types
