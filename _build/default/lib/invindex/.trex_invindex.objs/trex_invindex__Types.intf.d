lib/invindex/types.mli: Format
