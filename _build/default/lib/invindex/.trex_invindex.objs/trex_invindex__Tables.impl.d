lib/invindex/tables.ml: List Trex_util Types
