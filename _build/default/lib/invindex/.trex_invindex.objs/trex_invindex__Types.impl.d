lib/invindex/types.ml: Format
