lib/invindex/index.ml: Buffer Hashtbl List Option Printf Seq String Tables Trex_storage Trex_summary Trex_text Trex_util Trex_xml Types
