type pos = { docid : int; offset : int }

let compare_pos a b =
  match compare a.docid b.docid with 0 -> compare a.offset b.offset | c -> c

let m_pos = { docid = max_int; offset = max_int }
let is_m_pos p = p.docid = max_int && p.offset = max_int

let pp_pos fmt p =
  if is_m_pos p then Format.pp_print_string fmt "m-pos"
  else Format.fprintf fmt "(%d,%d)" p.docid p.offset

type element = { sid : int; docid : int; endpos : int; length : int }

let start_pos e = e.endpos - e.length
let element_end e = { docid = e.docid; offset = e.endpos }
let dummy_element = { sid = -1; docid = max_int; endpos = max_int; length = 0 }
let is_dummy e = e.docid = max_int && e.endpos = max_int

let contains e (p : pos) =
  e.docid = p.docid && start_pos e < p.offset && p.offset < e.endpos

let element_contains_element ~outer ~inner =
  outer.docid = inner.docid
  && start_pos outer <= start_pos inner
  && inner.endpos <= outer.endpos
  && not (outer.endpos = inner.endpos && start_pos outer = start_pos inner)

let compare_element a b =
  match compare a.docid b.docid with
  | 0 -> (
      match compare a.endpos b.endpos with
      | 0 -> ( match compare a.length b.length with 0 -> compare a.sid b.sid | c -> c)
      | c -> c)
  | c -> c

let pp_element fmt e =
  Format.fprintf fmt "{sid=%d doc=%d end=%d len=%d}" e.sid e.docid e.endpos e.length
