module Codec = Trex_util.Codec

module Elements = struct
  let name = "elements"

  let key ~sid ~docid ~endpos =
    Codec.concat_keys
      [ Codec.key_of_int sid; Codec.key_of_int docid; Codec.key_of_int endpos ]

  let sid_prefix sid = Codec.key_of_int sid

  let encode (e : Types.element) =
    let b = Codec.Buf.create ~capacity:8 () in
    Codec.Buf.add_varint b e.length;
    (key ~sid:e.sid ~docid:e.docid ~endpos:e.endpos, Codec.Buf.contents b)

  let decode k v : Types.element =
    let sid, p = Codec.int_of_key k ~pos:0 in
    let docid, p = Codec.int_of_key k ~pos:p in
    let endpos, _ = Codec.int_of_key k ~pos:p in
    let r = Codec.Reader.of_string v in
    let length = Codec.Reader.varint r in
    { sid; docid; endpos; length }
end

module Posting_lists = struct
  let name = "postings"
  let token_prefix token = Codec.key_of_string token

  let key ~token ~(first : Types.pos) =
    Codec.concat_keys
      [
        Codec.key_of_string token;
        Codec.key_of_int first.docid;
        Codec.key_of_int first.offset;
      ]

  let encode_chunk ~token positions =
    match positions with
    | [] -> invalid_arg "Posting_lists.encode_chunk: empty chunk"
    | first :: _ ->
        let b = Codec.Buf.create ~capacity:256 () in
        Codec.Buf.add_varint b (List.length positions);
        (* Delta-encode within the chunk: docid deltas, then offset
           (absolute when the docid changed, delta otherwise). *)
        let prev = ref { Types.docid = 0; offset = 0 } in
        List.iter
          (fun (p : Types.pos) ->
            let ddoc = p.docid - !prev.docid in
            Codec.Buf.add_varint b ddoc;
            if ddoc = 0 then Codec.Buf.add_varint b (p.offset - !prev.offset)
            else Codec.Buf.add_varint b p.offset;
            prev := p)
          positions;
        (key ~token ~first, Codec.Buf.contents b)

  let decode_chunk v =
    let r = Codec.Reader.of_string v in
    let n = Codec.Reader.varint r in
    let prev = ref { Types.docid = 0; offset = 0 } in
    List.init n (fun _ ->
        let ddoc = Codec.Reader.varint r in
        let docid = !prev.docid + ddoc in
        let offset =
          if ddoc = 0 then !prev.offset + Codec.Reader.varint r
          else Codec.Reader.varint r
        in
        let p = { Types.docid; offset } in
        prev := p;
        p)
end

module Documents = struct
  type row = { docid : int; name : string; bytes : int; elements : int }

  let name = "documents"

  let encode row =
    let b = Codec.Buf.create () in
    Codec.Buf.add_string b row.name;
    Codec.Buf.add_varint b row.bytes;
    Codec.Buf.add_varint b row.elements;
    (Codec.key_of_int row.docid, Codec.Buf.contents b)

  let decode k v =
    let docid, _ = Codec.int_of_key k ~pos:0 in
    let r = Codec.Reader.of_string v in
    let name = Codec.Reader.string r in
    let bytes = Codec.Reader.varint r in
    let elements = Codec.Reader.varint r in
    { docid; name; bytes; elements }
end

module Terms = struct
  type row = { token : string; df : int; cf : int }

  let name = "terms"

  let encode row =
    let b = Codec.Buf.create ~capacity:8 () in
    Codec.Buf.add_varint b row.df;
    Codec.Buf.add_varint b row.cf;
    (Codec.key_of_string row.token, Codec.Buf.contents b)

  let decode k v =
    let token, _ = Codec.string_of_key k ~pos:0 in
    let r = Codec.Reader.of_string v in
    let df = Codec.Reader.varint r in
    let cf = Codec.Reader.varint r in
    { token; df; cf }
end

let meta_table = "meta"
