lib/selfman/workload.ml: Float List Printf String
