lib/selfman/autopilot.mli: Advisor Format Trex_invindex Trex_scoring
