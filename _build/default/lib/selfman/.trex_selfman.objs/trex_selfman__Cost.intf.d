lib/selfman/cost.mli: Trex_invindex Trex_scoring Workload
