lib/selfman/cost.ml: Float List Trex_invindex Trex_topk Workload
