lib/selfman/advisor.ml: Array Cost Float Fun Hashtbl List Option Printf Set Trex_topk Workload
