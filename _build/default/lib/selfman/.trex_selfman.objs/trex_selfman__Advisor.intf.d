lib/selfman/advisor.mli: Cost Trex_invindex Trex_scoring Workload
