lib/selfman/workload.mli:
