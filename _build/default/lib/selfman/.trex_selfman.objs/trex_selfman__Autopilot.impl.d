lib/selfman/autopilot.ml: Advisor Cost Float Format Hashtbl List Option String Trex_invindex Trex_scoring Trex_topk Workload
