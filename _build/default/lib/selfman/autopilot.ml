module Index = Trex_invindex.Index
module Rpl = Trex_topk.Rpl

type observed = {
  mutable count : int;
  mutable sids : int list;
  mutable terms : string list;
  mutable k : int;
}

type t = {
  index : Index.t;
  scoring : Trex_scoring.Scorer.config;
  budget : int;
  min_observations : int;
  drift_threshold : float;
  seen : (string, observed) Hashtbl.t;
  mutable total : int;
  mutable plan : Advisor.plan option;
  mutable planned_freqs : (string * float) list; (* mix the plan was built for *)
}

let create index ~scoring ~budget ?(min_observations = 20) ?(drift_threshold = 0.25)
    () =
  if budget < 0 then invalid_arg "Autopilot.create: negative budget";
  {
    index;
    scoring;
    budget;
    min_observations;
    drift_threshold;
    seen = Hashtbl.create 16;
    total = 0;
    plan = None;
    planned_freqs = [];
  }

let record t ~id ~sids ~terms ~k =
  t.total <- t.total + 1;
  match Hashtbl.find_opt t.seen id with
  | Some o ->
      o.count <- o.count + 1;
      o.sids <- sids;
      o.terms <- terms;
      o.k <- k
  | None -> Hashtbl.add t.seen id { count = 1; sids; terms; k }

let observations t = t.total

let observed_frequencies t =
  if t.total = 0 then []
  else
    Hashtbl.fold
      (fun id o acc -> (id, float_of_int o.count /. float_of_int t.total) :: acc)
      t.seen []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let current_plan t = t.plan

(* Total-variation distance between two frequency maps. *)
let drift old_freqs new_freqs =
  let ids =
    List.sort_uniq String.compare (List.map fst old_freqs @ List.map fst new_freqs)
  in
  let get l id = Option.value ~default:0.0 (List.assoc_opt id l) in
  List.fold_left
    (fun acc id -> acc +. Float.abs (get old_freqs id -. get new_freqs id))
    0.0 ids
  /. 2.0

type verdict =
  | Too_few_observations of int
  | No_drift of float
  | Replanned of { plan : Advisor.plan; drift : float }

let observed_workload t =
  Workload.create
    (List.map
       (fun (id, frequency) ->
         let o = Hashtbl.find t.seen id in
         { Workload.id; sids = o.sids; terms = o.terms; k = o.k; frequency })
       (observed_frequencies t))

let maybe_replan t =
  if t.total < t.min_observations then Too_few_observations t.total
  else begin
    let freqs = observed_frequencies t in
    let d = drift t.planned_freqs freqs in
    if t.plan <> None && d < t.drift_threshold then No_drift d
    else begin
      let workload = observed_workload t in
      let profiles =
        List.map
          (fun q -> Cost.measure t.index ~scoring:t.scoring ~runs:1 q)
          (Workload.queries workload)
      in
      let plan = Advisor.greedy ~budget:t.budget profiles in
      (* Start from a clean slate so the budget holds over successive
         replans, then materialize only what the plan selected. *)
      Rpl.drop_all t.index Rpl.Rpl;
      Rpl.drop_all t.index Rpl.Erpl;
      Advisor.apply t.index ~scoring:t.scoring ~workload ~profiles plan;
      t.plan <- Some plan;
      t.planned_freqs <- freqs;
      Replanned { plan; drift = d }
    end
  end

let pp_verdict fmt = function
  | Too_few_observations n -> Format.fprintf fmt "too few observations (%d)" n
  | No_drift d -> Format.fprintf fmt "no drift (%.3f)" d
  | Replanned { plan; drift } ->
      Format.fprintf fmt "replanned at drift %.3f: %d bytes, %.2f ms saving" drift
        plan.Advisor.bytes_used
        (plan.Advisor.expected_saving *. 1e3)
