(** Workloads (paper Definition 4.1): top-k retrieval queries with
    frequencies summing to one. *)

type query = {
  id : string;
  sids : int list;
  terms : string list;
  k : int;
  frequency : float;
}

type t = private query list

val create : query list -> t
(** Validates: non-empty, distinct ids, positive frequencies summing to
    1 (within 1e-6), positive [k]. @raise Invalid_argument otherwise. *)

val of_unweighted : (string * int list * string list * int) list -> t
(** Uniform frequencies. *)

val queries : t -> query list
val find : t -> string -> query option
