(* Extent explorer: the paper describes summary extents with XPath
   expressions; this example prints every extent of the alias incoming
   summary with its XPath description, then cross-validates the summary
   against the reference XPath engine — for each extent, evaluating its
   XPath over the corpus must select exactly the extent's elements.

     dune exec examples/extent_explorer.exe *)

module Summary = Trex_summary.Summary
module Dom = Trex_xml.Dom
module Xpath = Trex_xpath.Xpath_eval
module Xpath_parser = Trex_xpath.Xpath_parser

let () =
  let coll = Trex_corpus.Gen.ieee ~doc_count:40 () in
  Printf.printf "building %s (%d documents)...\n%!" coll.name coll.doc_count;
  let env = Trex.Env.in_memory () in
  let engine = Trex.build ~env ~alias:coll.alias (coll.docs ()) in
  let summary = Trex.summary engine in

  Printf.printf "\nsummary: %d extents (alias incoming)\n" (Summary.node_count summary);
  Printf.printf "%-55s %8s\n" "extent (XPath)" "elements";
  List.iter
    (fun sid ->
      Printf.printf "%-55s %8d\n" (Summary.xpath_of_sid summary sid)
        (Summary.extent_size summary sid))
    (Summary.sids summary);

  (* Cross-validation: evaluating each extent's XPath over every
     document must find exactly extent_size elements in total. The
     alias mapping renames tags, so evaluate against alias-rewritten
     documents (rename during a DOM rewrite). *)
  let rec rename (el : Dom.element) =
    {
      el with
      Dom.tag = Trex.Alias.apply coll.alias el.Dom.tag;
      children =
        List.map
          (function
            | Dom.Element e -> Dom.Element (rename e)
            | Dom.Text _ as t -> t)
          el.children;
    }
  in
  let docs =
    coll.docs () |> List.of_seq
    |> List.map (fun (_, xml) ->
           Xpath.of_doc { (Dom.parse xml) with Dom.root = rename (Dom.parse xml).root })
  in
  Printf.printf "\ncross-validating extents against the XPath engine...\n%!";
  let mismatches = ref 0 in
  List.iter
    (fun sid ->
      let xpath = Xpath_parser.parse (Summary.xpath_of_sid summary sid) in
      let selected =
        List.fold_left (fun acc d -> acc + List.length (Xpath.select d xpath)) 0 docs
      in
      (* The incoming summary's XPath pins the full path, so the XPath
         result must match the extent exactly. *)
      if selected <> Summary.extent_size summary sid then begin
        incr mismatches;
        Printf.printf "  MISMATCH %s: xpath %d vs extent %d\n"
          (Summary.xpath_of_sid summary sid)
          selected
          (Summary.extent_size summary sid)
      end)
    (Summary.sids summary);
  Printf.printf "done: %d extents checked, %d mismatches\n"
    (Summary.node_count summary) !mismatches;

  (* Ad-hoc exploration with richer XPath than NEXI allows. *)
  let adhoc = "//article[count(.//fig) > 2]//st" in
  Printf.printf "\nad-hoc XPath %s:\n" adhoc;
  let total =
    List.fold_left
      (fun acc d -> acc + List.length (Xpath.run d adhoc))
      0 docs
  in
  Printf.printf "  %d section titles in figure-heavy articles\n" total
