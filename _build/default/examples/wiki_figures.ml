(* Figure search over the synthetic Wikipedia-like collection — the
   paper's Q292: find figures of Italian/Flemish Renaissance painting
   while excluding French and German ones. Demonstrates negative
   keywords, the strict/vague distinction, and summaries over a second
   document grammar.

     dune exec examples/wiki_figures.exe *)

let () =
  let coll = Trex_corpus.Gen.wikipedia ~doc_count:250 () in
  Printf.printf "building the %s collection...\n%!" coll.name;
  let env = Trex.Env.in_memory () in
  let engine = Trex.build ~env ~alias:coll.alias (coll.docs ()) in

  let nexi =
    "//article//figure[about(., Renaissance painting Italian Flemish -French -German)]"
  in
  Printf.printf "query: %s\n\n" nexi;

  (* Vague flat retrieval (the paper's experimental mode). *)
  let vague = Trex.query engine ~k:10 nexi in
  Printf.printf "vague: %d answers from sids [%s]\n"
    (List.length vague.strategy.answers)
    (String.concat "; "
       (List.map string_of_int (Trex.Translate.all_sids vague.translation)));

  (* Strict: answers must come from the target //article//figure extent. *)
  let strict = Trex.query engine ~k:10 ~strict:true nexi in
  Printf.printf "strict: %d answers (target extent only)\n"
    (List.length strict.strategy.answers);

  (* Structured: full semantics, with -French -German actually excluding
     figures whose captions mention those schools. *)
  let structured = Trex.query_structured engine ~k:10 nexi in
  Printf.printf "structured (with exclusions): %d answers\n\n"
    (List.length structured.strategy.answers);
  List.iter
    (fun (h : Trex.hit) ->
      Printf.printf "%d. [%.3f] %s %s\n   %s\n" h.rank h.score h.doc_name h.xpath
        h.snippet)
    (Trex.hits engine structured.strategy.answers);

  (* Show what the exclusion removed (over the full answer lists, not a
     top-10 prefix). *)
  let count nexi = List.length (Trex.query_structured engine ~k:max_int nexi).strategy.answers in
  let with_neg =
    count "//article//figure[about(., Renaissance painting Italian Flemish -French -German)]"
  in
  let without_neg =
    count "//article//figure[about(., Renaissance painting Italian Flemish)]"
  in
  Printf.printf
    "\nall answers: %d with exclusions vs %d without (exclusion removed %d figures)\n"
    with_neg without_neg (without_neg - with_neg)
