(* Self-managing index selection (paper §4): given a workload of top-k
   queries and a disk budget, measure per-query costs, plan which
   RPLs/ERPLs to materialize with the greedy 2-approximation and the
   exact branch-and-bound, apply the plan, and show the resulting
   method choices.

     dune exec examples/index_advisor.exe
     dune exec examples/index_advisor.exe -- 50      (budget, % of full) *)

let () =
  let budget_pct =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 40
  in
  let coll = Trex_corpus.Gen.ieee ~doc_count:120 () in
  Printf.printf "building %s...\n%!" coll.name;
  let env = Trex.Env.in_memory () in
  let engine = Trex.build ~env ~alias:coll.alias (coll.docs ()) in

  (* A workload: frequent cheap lookups plus a rare expensive sweep. *)
  let spec =
    [
      ("sections-ir", "//article//sec[about(., introduction information retrieval)]", 0.5);
      ("security", "//sec[about(., code signing verification)]", 0.3);
      ("everything", "//bdy//*[about(., model checking state space explosion)]", 0.2);
    ]
  in
  let workload =
    Trex.Workload.create
      (List.map
         (fun (id, nexi, frequency) ->
           let t = Trex.translate engine (Trex.parse engine nexi) in
           {
             Trex.Workload.id;
             sids = Trex.Translate.all_sids t;
             terms = Trex.Translate.all_terms t;
             k = 10;
             frequency;
           })
         spec)
  in

  Printf.printf "measuring workload costs (this materializes indexes temporarily)...\n%!";
  let plan_full, profiles = Trex.advise engine ~workload ~budget:max_int () in
  List.iter
    (fun (p : Trex.Cost.profile) ->
      Printf.printf "  %-12s f=%.2f  ERA %8.2fms  Merge %7.2fms  TA %7.2fms\n" p.id
        p.frequency (p.time_era *. 1e3) (p.time_merge *. 1e3) (p.time_ta *. 1e3))
    profiles;
  Printf.printf "unbounded plan: %d bytes, expected saving %.2f ms/query\n\n"
    plan_full.bytes_used
    (plan_full.expected_saving *. 1e3);

  let budget = plan_full.bytes_used * budget_pct / 100 in
  Printf.printf "disk budget: %d bytes (%d%% of full)\n" budget budget_pct;
  let greedy = Trex.Advisor.greedy ~budget profiles in
  let optimal = Trex.Advisor.branch_and_bound ~budget profiles in
  let show name (plan : Trex.Advisor.plan) =
    Printf.printf "%s: %d bytes, saving %.2f ms\n" name plan.bytes_used
      (plan.expected_saving *. 1e3);
    List.iter
      (fun (id, choice) ->
        Printf.printf "  %-12s -> %s\n" id (Trex.Advisor.choice_to_string choice))
      plan.decisions
  in
  show "greedy (2-approximation)" greedy;
  show "branch-and-bound (optimal)" optimal;
  Printf.printf "greedy achieves %.0f%% of optimal (theorem guarantees >= 50%%)\n\n"
    (if optimal.expected_saving > 0.0 then
       100.0 *. greedy.expected_saving /. optimal.expected_saving
     else 100.0);

  (* The measurement pass materialized everything; reclaim that space,
     then apply only what the plan selected and let the engine pick
     methods. *)
  Trex.Rpl.drop_all (Trex.index engine) Trex.Rpl.Rpl;
  Trex.Rpl.drop_all (Trex.index engine) Trex.Rpl.Erpl;
  Trex.vacuum engine;
  Trex.Advisor.apply (Trex.index engine) ~scoring:(Trex.scoring engine) ~workload greedy;
  Printf.printf "after applying the greedy plan the engine chooses:\n";
  List.iter
    (fun (id, nexi, _) ->
      let o = Trex.query engine ~k:10 nexi in
      Printf.printf "  %-12s -> %-6s (%.2f ms)\n" id
        (Trex.Strategy.method_to_string o.strategy.method_used)
        (o.strategy.elapsed_seconds *. 1e3))
    spec;

  (* Fully closed loop: the autopilot watches executed queries and
     replans on its own when the observed mix drifts. *)
  Printf.printf "\n--- autopilot (observed-workload self-management)\n";
  let pilot =
    Trex.Autopilot.create (Trex.index engine) ~scoring:(Trex.scoring engine)
      ~budget ~min_observations:20 ~drift_threshold:0.25 ()
  in
  let observe times (id, nexi, _) =
    let t = Trex.translate engine (Trex.parse engine nexi) in
    for _ = 1 to times do
      Trex.Autopilot.record pilot ~id
        ~sids:(Trex.Translate.all_sids t)
        ~terms:(Trex.Translate.all_terms t)
        ~k:10
    done
  in
  let report () =
    Format.printf "  autopilot: %a@." Trex.Autopilot.pp_verdict
      (Trex.Autopilot.maybe_replan pilot)
  in
  (* Phase 1: the workload looks like the spec said. *)
  List.iteri (fun i q -> observe (12 - (4 * i)) q) spec;
  report ();
  (* Phase 2: the expensive sweep suddenly dominates; the autopilot
     notices the drift and reshuffles the indexes. *)
  observe 200 (List.nth spec 2);
  report ()
