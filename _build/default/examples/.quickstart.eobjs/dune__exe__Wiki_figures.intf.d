examples/wiki_figures.mli:
