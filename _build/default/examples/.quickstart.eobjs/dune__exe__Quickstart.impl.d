examples/quickstart.ml: List Printf String Trex
