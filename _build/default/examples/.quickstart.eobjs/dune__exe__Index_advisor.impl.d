examples/index_advisor.ml: Array Format List Printf Sys Trex Trex_corpus
