examples/quickstart.mli:
