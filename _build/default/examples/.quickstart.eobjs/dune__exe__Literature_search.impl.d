examples/literature_search.ml: Array List Printf Sys Trex Trex_corpus
