examples/extent_explorer.mli:
