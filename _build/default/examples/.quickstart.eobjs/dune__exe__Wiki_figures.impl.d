examples/wiki_figures.ml: List Printf String Trex Trex_corpus
