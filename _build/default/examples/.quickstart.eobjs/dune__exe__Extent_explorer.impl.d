examples/extent_explorer.ml: List Printf Trex Trex_corpus Trex_summary Trex_xml Trex_xpath
