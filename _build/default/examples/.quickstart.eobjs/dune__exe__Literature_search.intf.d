examples/literature_search.mli:
