(* Quickstart: index a handful of inline XML documents and run a NEXI
   query against them.

     dune exec examples/quickstart.exe *)

let documents =
  [
    ( "festival.xml",
      {|<article>
  <title>The summer festival of electronic music</title>
  <body>
    <sec><st>Synthesizers on stage</st>
      <p>Analog synthesizers dominated the closing night, with modular
         rigs improvising over tape loops.</p></sec>
    <sec><st>The crowd</st>
      <p>Attendance doubled compared to last year.</p></sec>
  </body>
</article>|} );
    ( "compilers.xml",
      {|<article>
  <title>Register allocation in optimizing compilers</title>
  <body>
    <sec><st>Graph coloring</st>
      <p>Spilling decisions interact with instruction scheduling.</p></sec>
    <sec><st>Evaluation</st>
      <p>We evaluate allocation quality on embedded music synthesizers
         firmware, an unusual workload.</p></sec>
  </body>
</article>|} );
    ( "retrieval.xml",
      {|<article>
  <title>Ranked retrieval of structured documents</title>
  <body>
    <sec><st>Scoring</st>
      <p>Element scores combine term frequency with element length.</p></sec>
    <sec><st>Top-k evaluation</st>
      <p>The threshold algorithm stops once no unseen element can enter
         the top answers.</p></sec>
  </body>
</article>|} );
  ]

let () =
  (* 1. Build an engine over an in-memory storage environment. *)
  let env = Trex.Env.in_memory () in
  let engine = Trex.build ~env (List.to_seq documents) in
  let stats = Trex.Index.stats (Trex.index engine) in
  Printf.printf "indexed %d documents: %d elements, %d distinct terms\n\n"
    stats.doc_count stats.element_count stats.term_count;

  (* 2. Ask for sections about music synthesizers. *)
  let nexi = "//article//sec[about(., music synthesizers)]" in
  Printf.printf "query: %s\n\n" nexi;
  let outcome = Trex.query engine ~k:5 nexi in
  Printf.printf "translation: %d sids, terms [%s]; evaluated with %s\n\n"
    (List.length (Trex.Translate.all_sids outcome.translation))
    (String.concat "; " (Trex.Translate.all_terms outcome.translation))
    (Trex.Strategy.method_to_string outcome.strategy.method_used);

  (* 3. Print the ranked hits. *)
  List.iter
    (fun (h : Trex.hit) ->
      Printf.printf "%d. [%.3f] %s  %s\n   %s\n" h.rank h.score h.doc_name h.xpath
        h.snippet)
    (Trex.hits engine outcome.strategy.answers);

  (* 4. Materialize the redundant top-k indexes for this query and run
     it again with the threshold algorithm. *)
  let report = Trex.materialize engine nexi in
  Printf.printf "\nmaterialized %d (term, sid) lists (%d entries)\n"
    (List.length report.pairs_built)
    report.entries_written;
  let ta = Trex.query engine ~k:5 ~method_:Trex.Strategy.Ta_method nexi in
  Printf.printf "TA returns the same top hit: %b\n"
    (match (outcome.strategy.answers, ta.strategy.answers) with
    | a :: _, b :: _ -> Trex.Types.compare_element a.element b.element = 0
    | _ -> false)
