(* Literature search over the synthetic IEEE-like collection: the
   workload the paper's introduction motivates. Runs several NEXI
   queries, shows how the three retrieval strategies compare on each,
   and prints the top hits.

     dune exec examples/literature_search.exe
     dune exec examples/literature_search.exe -- 300       (document count) *)

let () =
  let doc_count =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 150
  in
  let coll = Trex_corpus.Gen.ieee ~doc_count () in
  Printf.printf "building the %s collection (%d documents)...\n%!" coll.name doc_count;
  let env = Trex.Env.in_memory () in
  let engine = Trex.build ~env ~alias:coll.alias (coll.docs ()) in

  let queries =
    [
      "//article[about(., ontologies)]//sec[about(., ontologies case study)]";
      "//sec[about(., code signing verification)]";
      "//article//sec[about(., introduction information retrieval)]";
      "//article[about(.//bdy, synthesizers) and about(.//bdy, music)]";
    ]
  in
  List.iter
    (fun nexi ->
      Printf.printf "\n--- %s\n" nexi;
      (* ERA needs no extra indexes; build RPLs/ERPLs so TA and Merge
         can run too. *)
      ignore (Trex.materialize engine nexi);
      List.iter
        (fun m ->
          let o = Trex.query engine ~k:10 ~method_:m nexi in
          Printf.printf "%-6s %7.2f ms  %6d entries read  %d answers\n"
            (Trex.Strategy.method_to_string m)
            (o.strategy.elapsed_seconds *. 1000.0)
            o.strategy.entries_read
            (List.length o.strategy.answers))
        Trex.Strategy.[ Era_method; Ta_method; Merge_method ];
      let o = Trex.query engine ~k:3 nexi in
      List.iter
        (fun (h : Trex.hit) ->
          Printf.printf "  %d. [%.3f] %s %s\n     %s\n" h.rank h.score h.doc_name
            h.xpath h.snippet)
        (Trex.hits engine o.strategy.answers))
    queries;

  (* The structured evaluator implements full NEXI semantics: support
     paths (the article's about) boost the enclosing article, and the
     answer is always drawn from the target extent. *)
  let nexi = "//article[about(., ontologies)]//sec[about(., ontologies case study)]" in
  Printf.printf "\n--- structured evaluation: %s\n" nexi;
  let o = Trex.query_structured engine ~k:3 nexi in
  List.iter
    (fun (h : Trex.hit) ->
      Printf.printf "  %d. [%.3f] %s %s\n" h.rank h.score h.doc_name h.xpath)
    (Trex.hits engine o.strategy.answers)
