(* trex_cli: command-line front end to the TReX engine.

   Subcommands:
     gen          generate a synthetic collection into a directory of XML files
     index        build an on-disk index over a directory of XML files
     add          incrementally index one more document
     query        evaluate a NEXI query against an index
     materialize  build the RPL/ERPL lists a query needs
     stats        show index sizes, summary info and materialized lists
     advise       plan index selection for a workload under a disk budget
     vacuum       compact the redundant-index tables
     verify       checksum-sweep and structurally verify every table
     health       probe tables, trip breakers, report resilience state
     journal      inspect the persistent query journal (tail|profile|slow)
     autopilot    replay the journal into the advisor and replan
     xpath        evaluate an XPath expression over an XML file
     shard        sharded coordinator: create | query | health | rebalance
     serve        network front door: admission control + graceful drain
     client       query a serve daemon over TCP

   Exit codes: 0 ok; 1 generic failure; 2 verify found corruption or an
   unresolvable manifest operation (also shard health with quarantined
   shards); 3 query answered degraded (budget expired, or a sharded
   query missing shards); 4 health found an open circuit breaker; 5
   autopilot had too few journaled observations to replan; 6 the serve
   daemon shed the request (admission control); 7 the serve daemon is
   draining or unreachable.

   Example session:
     dune exec bin/trex_cli.exe -- gen --collection ieee --docs 100 --out /tmp/docs
     dune exec bin/trex_cli.exe -- index --src /tmp/docs --env /tmp/trexdb --alias ieee
     dune exec bin/trex_cli.exe -- query --env /tmp/trexdb -k 5 \
       "//article//sec[about(., information retrieval)]"
*)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path content =
  let oc = open_out_bin path in
  output_string oc content;
  close_out oc

let alias_of_name = function
  | "ieee" -> (Trex_corpus.Gen.ieee ~doc_count:1 ()).alias
  | "wiki" -> (Trex_corpus.Gen.wikipedia ~doc_count:1 ()).alias
  | "none" -> Trex.Alias.identity
  | other -> failwith (Printf.sprintf "unknown alias set %S (ieee|wiki|none)" other)

(* ---- gen ---- *)

let gen_cmd =
  let collection =
    Arg.(value & opt string "ieee" & info [ "collection" ] ~doc:"ieee or wiki")
  in
  let docs = Arg.(value & opt int 100 & info [ "docs" ] ~doc:"number of documents") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"generator seed") in
  let out = Arg.(required & opt (some string) None & info [ "out" ] ~doc:"output directory") in
  let run collection docs seed out =
    let coll =
      match collection with
      | "ieee" -> Trex_corpus.Gen.ieee ~doc_count:docs ~seed ()
      | "wiki" -> Trex_corpus.Gen.wikipedia ~doc_count:docs ~seed ()
      | other -> failwith (Printf.sprintf "unknown collection %S" other)
    in
    if not (Sys.file_exists out) then Unix.mkdir out 0o755;
    Seq.iter (fun (name, xml) -> write_file (Filename.concat out name) xml) (coll.docs ());
    Printf.printf "wrote %d documents to %s\n" docs out
  in
  Cmd.v (Cmd.info "gen" ~doc:"Generate a synthetic XML collection")
    Term.(const run $ collection $ docs $ seed $ out)

(* ---- index ---- *)

let env_arg =
  Arg.(required & opt (some string) None & info [ "env" ] ~doc:"index directory")

let index_cmd =
  let src =
    Arg.(required & opt (some string) None & info [ "src" ] ~doc:"directory of .xml files")
  in
  let alias = Arg.(value & opt string "none" & info [ "alias" ] ~doc:"ieee, wiki or none") in
  let summary =
    Arg.(value & opt string "incoming"
         & info [ "summary" ] ~doc:"incoming, tag, or aK (e.g. a2) for an A(k)-index")
  in
  let run src env alias summary =
    let files =
      Sys.readdir src |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".xml")
      |> List.sort String.compare
    in
    if files = [] then failwith ("no .xml files in " ^ src);
    let docs =
      List.to_seq files
      |> Seq.map (fun f -> (f, read_file (Filename.concat src f)))
    in
    let criterion =
      match summary with
      | "incoming" -> Trex.Summary.Incoming
      | "tag" -> Trex.Summary.Tag
      | s when String.length s >= 2 && s.[0] = 'a' -> (
          match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
          | Some k -> Trex.Summary.A_k k
          | None -> failwith (Printf.sprintf "unknown summary %S" s))
      | other -> failwith (Printf.sprintf "unknown summary %S" other)
    in
    let storage = Trex.Env.on_disk env in
    let t0 = Unix.gettimeofday () in
    let engine =
      Trex.build ~env:storage ~summary_criterion:criterion
        ~alias:(alias_of_name alias) docs
    in
    let stats = Trex.Index.stats (Trex.index engine) in
    Trex.Env.close storage;
    Printf.printf "indexed %d documents (%d elements, %d terms) into %s in %.1fs\n"
      stats.doc_count stats.element_count stats.term_count env
      (Unix.gettimeofday () -. t0)
  in
  Cmd.v (Cmd.info "index" ~doc:"Build an index over XML files")
    Term.(const run $ src $ env_arg $ alias $ summary)

(* ---- query ---- *)

let query_cmd =
  let nexi = Arg.(required & pos 0 (some string) None & info [] ~docv:"NEXI") in
  let k = Arg.(value & opt int 10 & info [ "k" ] ~doc:"answers to return") in
  let method_ =
    Arg.(value & opt (some string) None & info [ "method" ] ~doc:"era|ta|ita|merge")
  in
  let strict = Arg.(value & flag & info [ "strict" ] ~doc:"strict interpretation") in
  let structured =
    Arg.(value & flag & info [ "structured" ] ~doc:"full NEXI semantics")
  in
  let trace =
    Arg.(value & flag
         & info [ "trace" ] ~doc:"print a tree of timed spans after the answers")
  in
  let trace_out =
    Arg.(value & opt (some string) None
         & info [ "trace-out" ] ~docv:"FILE"
             ~doc:"write the query's span forest as Chrome trace-event JSON \
                   to $(docv) (open in chrome://tracing or Perfetto); \
                   implies span collection")
  in
  let deadline_ms =
    Arg.(value & opt (some float) None
         & info [ "deadline-ms" ]
             ~doc:"wall-clock budget; on expiry return best-effort answers \
                   tagged DEGRADED (exit 3)")
  in
  let page_budget =
    Arg.(value & opt (some int) None
         & info [ "page-budget" ]
             ~doc:"physical page-read budget; on exhaustion return \
                   best-effort answers tagged DEGRADED (exit 3)")
  in
  let journal =
    Arg.(value & flag
         & info [ "journal" ]
             ~doc:"append a telemetry record for this query to the env's \
                   persistent journal (inspect with the journal subcommand)")
  in
  let run env nexi k method_ strict structured trace trace_out deadline_ms
      page_budget journal =
    let storage = Trex.Env.on_disk env in
    let engine = Trex.attach ~env:storage () in
    if trace || trace_out <> None then Trex.Obs.Span.set_enabled true;
    if journal then Trex.Obs.Journal.set_enabled true;
    let outcome =
      if structured then
        Trex.query_structured engine ~k ?deadline_ms ?page_budget nexi
      else
        let m =
          Option.map
            (function
              | "era" -> Trex.Strategy.Era_method
              | "ta" -> Trex.Strategy.Ta_method
              | "ita" -> Trex.Strategy.Ita_method
              | "merge" -> Trex.Strategy.Merge_method
              | other -> failwith (Printf.sprintf "unknown method %S" other))
            method_
        in
        Trex.query engine ~k ?method_:m ~strict ?deadline_ms ?page_budget nexi
    in
    Printf.printf "%s: %d answers in %.2f ms (%s)\n"
      (Trex.Strategy.method_to_string outcome.strategy.method_used)
      (List.length outcome.strategy.answers)
      (outcome.strategy.elapsed_seconds *. 1000.0)
      outcome.strategy.detail;
    List.iter
      (fun (f : Trex.Strategy.failover) ->
        Printf.printf "fallback: %s failed (%s)\n"
          (Trex.Strategy.method_to_string f.failed)
          f.error)
      outcome.fallbacks;
    List.iter
      (fun (h : Trex.hit) ->
        Printf.printf "%2d. [%.4f] %s %s\n    %s\n" h.rank h.score h.doc_name h.xpath
          h.snippet)
      (Trex.hits engine ~limit:k outcome.strategy.answers);
    if outcome.degraded then
      Printf.printf
        "DEGRADED: budget expired; answers are a sound but possibly-partial \
         prefix\n";
    if trace then begin
      Printf.printf "trace:\n";
      Format.printf "%a@." Trex.Obs.Span.pp_tree (Trex.Obs.Span.roots ())
    end;
    (match trace_out with
    | Some path ->
        Trex.Obs.Export.write path
          [
            {
              Trex.Obs.Export.p_pid = Unix.getpid ();
              p_name = "trex";
              p_spans = Trex.Obs.Span.roots ();
            };
          ];
        Printf.printf "trace written to %s\n" path
    | None -> ());
    if journal then
      Printf.printf "journaled to %s (%d record(s) on file)\n"
        (Option.value ~default:"<memory>" (Trex.Env.journal_path storage))
        (Trex.Obs.Journal.length (Trex.Env.journal storage));
    Trex.Env.close storage;
    if outcome.degraded then exit 3
  in
  Cmd.v (Cmd.info "query" ~doc:"Evaluate a NEXI query")
    Term.(const run $ env_arg $ nexi $ k $ method_ $ strict $ structured $ trace
          $ trace_out $ deadline_ms $ page_budget $ journal)

(* ---- materialize ---- *)

let materialize_cmd =
  let nexi = Arg.(required & pos 0 (some string) None & info [] ~docv:"NEXI") in
  let kind =
    Arg.(value & opt string "both" & info [ "kind" ] ~doc:"rpl, erpl or both")
  in
  let run env nexi kind =
    let kinds =
      match kind with
      | "rpl" -> [ Trex.Rpl.Rpl ]
      | "erpl" -> [ Trex.Rpl.Erpl ]
      | "both" -> [ Trex.Rpl.Rpl; Trex.Rpl.Erpl ]
      | other -> failwith (Printf.sprintf "unknown kind %S" other)
    in
    let storage = Trex.Env.on_disk env in
    let engine = Trex.attach ~env:storage () in
    let report = Trex.materialize engine ~kinds nexi in
    Printf.printf "built %d lists (%d entries, ~%d bytes); %d already existed\n"
      (List.length report.pairs_built)
      report.entries_written report.bytes_estimate report.pairs_reused;
    Trex.Env.close storage
  in
  Cmd.v
    (Cmd.info "materialize" ~doc:"Materialize the RPL/ERPL lists a query needs")
    Term.(const run $ env_arg $ nexi $ kind)

(* ---- vacuum ---- *)

let vacuum_cmd =
  let run env =
    let storage = Trex.Env.on_disk env in
    let engine = Trex.attach ~env:storage () in
    let before = Trex.table_sizes engine in
    Trex.vacuum engine;
    let after = Trex.table_sizes engine in
    Printf.printf "RPLs %d -> %d bytes, ERPLs %d -> %d bytes\n" before.rpls_bytes
      after.rpls_bytes before.erpls_bytes after.erpls_bytes;
    Trex.Env.close storage
  in
  Cmd.v
    (Cmd.info "vacuum" ~doc:"Compact the redundant-index tables, reclaiming dropped space")
    Term.(const run $ env_arg)

(* ---- verify ---- *)

let verify_cmd =
  let recover =
    Arg.(value & flag
         & info [ "recover" ]
             ~doc:
               "Fall back to the older committed header epoch where the \
                newest slot is damaged, and reinitialize tables whose \
                creation never committed")
  in
  let run env recover =
    (* Env.on_disk creates missing directories; verifying a typo'd path
       must fail, not mint an empty index that "verifies". *)
    if not (Sys.file_exists env && Sys.is_directory env) then begin
      Printf.eprintf "trex verify: no index directory at %s\n" env;
      exit 1
    end;
    let storage, reports =
      if recover then Trex.Env.open_with_recovery env
      else
        let s = Trex.Env.on_disk env in
        (s, Trex.Env.verify s)
    in
    List.iter
      (fun (r : Trex.Env.table_report) ->
        let status =
          if not r.ok then "CORRUPT"
          else if r.recovered then "RECOVERED"
          else "OK"
        in
        Printf.printf "%-20s %-10s %6d pages %8d entries\n" r.table status
          r.pages r.entries;
        List.iter (fun n -> Printf.printf "    note: %s\n" n) r.notes;
        List.iter (fun p -> Printf.printf "    problem: %s\n" p) r.problems)
      reports;
    let failures, recoveries =
      List.fold_left
        (fun (f, rcv) (_, (s : Trex_storage.Pager.stats)) ->
          (f + s.checksum_failures, rcv + s.recoveries))
        (0, 0) (Trex.Env.io_stats storage)
    in
    Printf.printf "storage.checksum_failures: %d\nstorage.recoveries: %d\n"
      failures recoveries;
    (* Manifest replay happened at open; report what it did. *)
    let resolutions = Trex.Env.manifest_resolutions storage in
    let count p = List.length (List.filter p resolutions) in
    let fwd =
      count (fun (r : Trex.Env.resolution) -> r.res_ok && r.res_outcome = "rolled forward")
    and back =
      count (fun (r : Trex.Env.resolution) -> r.res_ok && r.res_outcome <> "rolled forward")
    in
    let unresolved = Trex.Env.manifest_unresolved storage in
    Printf.printf "manifest: generation %d, %d op(s) rolled forward, %d rolled back, %d unresolved\n"
      (Trex.Env.generation storage) fwd back unresolved;
    List.iter
      (fun (r : Trex.Env.resolution) ->
        Printf.printf "    op #%d %s: %s\n" r.res_op_id r.res_op r.res_outcome)
      resolutions;
    let bad = List.filter (fun (r : Trex.Env.table_report) -> not r.ok) reports in
    Trex.Env.close storage;
    if bad <> [] || unresolved > 0 then begin
      if bad <> [] then
        Printf.printf "%d table(s) corrupt%s\n" (List.length bad)
          (if recover then "" else " (try --recover)");
      if unresolved > 0 then
        Printf.printf "%d manifest operation(s) unresolvable; their tables are blocked\n"
          unresolved;
      (* exit 2 = corruption found (or an unresolvable manifest op),
         distinct from generic failures (1) *)
      exit 2
    end
    else Printf.printf "all tables verified\n"
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Verify checksums and B+tree structure of every table in an index")
    Term.(const run $ env_arg $ recover)

(* ---- health ---- *)

let health_cmd =
  let run env =
    if not (Sys.file_exists env && Sys.is_directory env) then begin
      Printf.eprintf "trex health: no index directory at %s\n" env;
      exit 1
    end;
    let storage = Trex.Env.on_disk env in
    (* Probe every table so breakers reflect the current state of the
       files, not just what queries happened to touch. *)
    let reports = Trex.Env.verify storage in
    List.iter
      (fun (r : Trex.Env.table_report) ->
        if not r.ok then
          Trex.Env.trip_table storage r.table
            ~reason:(String.concat "; " r.problems))
      reports;
    Printf.printf "tables:\n";
    List.iter
      (fun (r : Trex.Env.table_report) ->
        Printf.printf "  %-20s %-7s %6d pages %8d entries\n" r.table
          (if r.ok then "OK" else "CORRUPT")
          r.pages r.entries)
      reports;
    Printf.printf "manifest:\n";
    Printf.printf "  generation %d\n" (Trex.Env.generation storage);
    let blocked =
      List.filter (Trex.Env.table_blocked storage)
        (List.sort_uniq compare (Trex.Env.table_names storage))
    in
    (match Trex.Env.manifest_resolutions storage with
    | [] -> Printf.printf "  (no operations replayed at open)\n"
    | rs ->
        List.iter
          (fun (r : Trex.Env.resolution) ->
            Printf.printf "  op #%d %-16s %s\n" r.res_op_id r.res_op r.res_outcome)
          rs);
    if blocked <> [] then
      Printf.printf "  blocked tables: %s\n" (String.concat " " blocked);
    Printf.printf "breakers:\n";
    let states = Trex.Env.breaker_states storage in
    if states = [] then Printf.printf "  (none tripped)\n"
    else
      List.iter
        (fun (name, state) ->
          let b = Trex.Env.breaker storage name in
          Printf.printf "  %-20s %-9s%s\n" name
            (Trex.Breaker.state_to_string state)
            (match Trex.Breaker.last_reason b with
            | Some r -> " last: " ^ r
            | None -> ""))
        states;
    Printf.printf "resilience counters:\n";
    let v name = Trex.Obs.Metrics.value (Trex.Obs.Metrics.counter name) in
    List.iter
      (fun name -> Printf.printf "  %-32s %d\n" name (v name))
      [
        "resilience.retries";
        "resilience.retry_exhaustions";
        "resilience.breaker_trips";
        "resilience.breaker_closes";
        "resilience.degraded_runs";
        "resilience.fallbacks";
        "resilience.deadline_exceeded";
        "resilience.page_budget_exceeded";
        "resilience.rebuilds";
        "pager.transient_faults";
        "env.quarantines";
        "manifest.rolled_forward";
        "manifest.rolled_back";
        "manifest.unresolved";
      ];
    let open_breakers =
      List.filter (fun (_, s) -> s <> Trex.Breaker.Closed) states
    in
    Trex.Env.close storage;
    if open_breakers <> [] then begin
      Printf.printf "%d breaker(s) open\n" (List.length open_breakers);
      exit 4
    end
    else Printf.printf "healthy\n"
  in
  Cmd.v
    (Cmd.info "health"
       ~doc:
         "Probe every table, trip circuit breakers on damage, and report \
          breaker states and resilience counters (exit 4 if any breaker is \
          open)")
    Term.(const run $ env_arg)

(* ---- journal ---- *)

(* Shared loader: a typo'd env path or a journal-less env is a user
   error (exit 1), not a reason to mint an empty journal. A shard
   coordinator directory (it holds SHARDS.mf, not an Env) is served its
   supervised-query journal, written by shard query --process
   --journal. *)
let load_journal_records cmd env =
  if not (Sys.file_exists env && Sys.is_directory env) then begin
    Printf.eprintf "trex %s: no index directory at %s\n" cmd env;
    exit 1
  end;
  if Sys.file_exists (Filename.concat env "SHARDS.mf") then begin
    let path = Filename.concat env "query_journal.qj" in
    if not (Sys.file_exists path) then begin
      Printf.eprintf
        "trex %s: no coordinator journal in %s (run shard query --process \
         --journal first)\n"
        cmd env;
      exit 1
    end;
    let j = Trex.Obs.Journal.open_file path in
    let records = Trex.Obs.Journal.records j in
    Trex.Obs.Journal.close j;
    records
  end
  else
  let storage = Trex.Env.on_disk env in
  if not (Trex.Env.has_journal storage) then begin
    Printf.eprintf
      "trex %s: no query journal in %s (run queries with --journal first)\n"
      cmd env;
    Trex.Env.close storage;
    exit 1
  end;
  let records = Trex.Obs.Journal.records (Trex.Env.journal storage) in
  Trex.Env.close storage;
  records

let journal_tail_cmd =
  let n =
    Arg.(value & opt int 20
         & info [ "n"; "last" ] ~doc:"number of records to show")
  in
  let run env n =
    let records = load_journal_records "journal tail" env in
    let total = List.length records in
    let skip = max 0 (total - n) in
    Printf.printf "%d record(s) journaled; showing last %d\n" total
      (total - skip);
    List.iteri
      (fun i r -> if i >= skip then Format.printf "%a@." Trex.Obs.Journal.pp_record r)
      records
  in
  Cmd.v
    (Cmd.info "tail" ~doc:"Show the most recent journal records")
    Term.(const run $ env_arg $ n)

let journal_profile_cmd =
  let json = Arg.(value & flag & info [ "json" ] ~doc:"emit JSON") in
  let run env json =
    let records = load_journal_records "journal profile" env in
    let profile = Trex.Obs.Profile.of_records records in
    if json then
      print_endline (Trex.Obs.Json.to_string (Trex.Obs.Profile.to_json profile))
    else Format.printf "%a@." Trex.Obs.Profile.pp profile
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Aggregate the journal into per-query and per-strategy latency \
          percentiles and shares")
    Term.(const run $ env_arg $ json)

let journal_slow_cmd =
  let n =
    Arg.(value & opt int 10
         & info [ "n"; "last" ] ~doc:"number of slow queries to show")
  in
  let run env n =
    let records = load_journal_records "journal slow" env in
    let slow =
      Trex.Obs.Profile.slowest (Trex.Obs.Profile.of_records ~slow_capacity:n records)
    in
    Printf.printf "%d slowest of %d journaled record(s)\n" (List.length slow)
      (List.length records);
    List.iter (fun r -> Format.printf "%a@." Trex.Obs.Journal.pp_record r) slow
  in
  Cmd.v
    (Cmd.info "slow" ~doc:"Show the slowest journaled queries")
    Term.(const run $ env_arg $ n)

let journal_cmd =
  Cmd.group
    (Cmd.info "journal"
       ~doc:
         "Inspect the persistent query journal (written by query --journal)")
    [ journal_tail_cmd; journal_profile_cmd; journal_slow_cmd ]

(* ---- autopilot ---- *)

let autopilot_cmd =
  let budget =
    Arg.(required & opt (some int) None
         & info [ "budget" ] ~doc:"disk budget in bytes")
  in
  let min_observations =
    Arg.(value & opt int 20
         & info [ "min-observations" ]
             ~doc:"journaled executions required before planning (exit 5 below)")
  in
  let drift_threshold =
    Arg.(value & opt float 0.25
         & info [ "drift-threshold" ]
             ~doc:"total-variation distance from the planned workload that \
                   triggers replanning")
  in
  let run env budget min_observations drift_threshold =
    if not (Sys.file_exists env && Sys.is_directory env) then begin
      Printf.eprintf "trex autopilot: no index directory at %s\n" env;
      exit 1
    end;
    let storage = Trex.Env.on_disk env in
    if not (Trex.Env.has_journal storage) then begin
      Printf.eprintf
        "trex autopilot: no query journal in %s (run queries with --journal \
         first)\n"
        env;
      Trex.Env.close storage;
      exit 1
    end;
    let engine = Trex.attach ~env:storage () in
    let records = Trex.Obs.Journal.records (Trex.Env.journal storage) in
    let pilot =
      Trex.Autopilot.create (Trex.index engine) ~scoring:(Trex.scoring engine)
        ~budget ~min_observations ~drift_threshold ()
    in
    let absorbed = Trex.Autopilot.absorb_journal pilot records in
    Printf.printf "absorbed %d journaled queries (%d distinct)\n" absorbed
      (List.length (Trex.Autopilot.observed_frequencies pilot));
    let verdict = Trex.Autopilot.maybe_replan pilot in
    Format.printf "%a@." Trex.Autopilot.pp_verdict verdict;
    (match verdict with
    | Trex.Autopilot.Replanned { plan; _ } ->
        List.iter
          (fun (id, choice) ->
            Printf.printf "  %-10s -> %s\n" id
              (Trex.Advisor.choice_to_string choice))
          plan.decisions
    | _ -> ());
    Trex.Env.close storage;
    match verdict with
    | Trex.Autopilot.Too_few_observations _ -> exit 5
    | _ -> ()
  in
  Cmd.v
    (Cmd.info "autopilot"
       ~doc:
         "Replay the query journal into the advisor and replan the redundant \
          indexes for the workload actually served (exit 5 when the journal \
          holds too few observations)")
    Term.(const run $ env_arg $ budget $ min_observations $ drift_threshold)

(* ---- xpath ---- *)

let xpath_cmd =
  let file = Arg.(required & opt (some string) None & info [ "file" ] ~doc:"XML file") in
  let expr = Arg.(required & pos 0 (some string) None & info [] ~docv:"XPATH") in
  let values = Arg.(value & flag & info [ "values" ] ~doc:"print string-values") in
  let run file expr values =
    let doc = Trex_xml.Dom.parse (read_file file) in
    let idx = Trex_xpath.Xpath_eval.of_doc doc in
    let path = Trex_xpath.Xpath_parser.parse expr in
    if values then
      List.iter print_endline (Trex_xpath.Xpath_eval.select_values idx path)
    else begin
      let results = Trex_xpath.Xpath_eval.select idx path in
      Printf.printf "%d elements\n" (List.length results);
      List.iteri
        (fun i (e : Trex_xml.Dom.element) ->
          let text = Trex_xml.Dom.text_content e in
          let text =
            if String.length text > 60 then String.sub text 0 60 ^ "..." else text
          in
          Printf.printf "%3d. <%s> bytes %d-%d: %s\n" (i + 1) e.tag e.start_pos
            e.end_pos text)
        results
    end
  in
  Cmd.v
    (Cmd.info "xpath" ~doc:"Evaluate an XPath expression over an XML file")
    Term.(const run $ file $ expr $ values)

(* ---- add ---- *)

let add_cmd =
  let file = Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE.xml") in
  let run env file =
    let storage = Trex.Env.on_disk env in
    let engine = Trex.attach ~env:storage () in
    let docid =
      Trex.add_document engine ~name:(Filename.basename file) ~xml:(read_file file)
    in
    Printf.printf "indexed %s as document %d (affected RPL/ERPL lists dropped)\n"
      file docid;
    Trex.Env.close storage
  in
  Cmd.v
    (Cmd.info "add" ~doc:"Incrementally index one more XML document")
    Term.(const run $ env_arg $ file)

(* ---- stats ---- *)

let stats_cmd =
  let run env =
    let storage = Trex.Env.on_disk env in
    let engine = Trex.attach ~env:storage () in
    let stats = Trex.Index.stats (Trex.index engine) in
    let sizes = Trex.table_sizes engine in
    Printf.printf "documents: %d  elements: %d  terms: %d  postings: %d\n"
      stats.doc_count stats.element_count stats.term_count stats.posting_count;
    Printf.printf "summary: %d nodes (%s)\n"
      (Trex.Summary.node_count (Trex.summary engine))
      (match Trex.Summary.criterion (Trex.summary engine) with
      | Trex.Summary.Incoming -> "incoming"
      | Trex.Summary.Tag -> "tag"
      | Trex.Summary.A_k k -> Printf.sprintf "a(%d)" k);
    Printf.printf "Elements: %d bytes  PostingLists: %d bytes\n" sizes.elements_bytes
      sizes.postings_bytes;
    Printf.printf "RPLs: %d bytes  ERPLs: %d bytes\n" sizes.rpls_bytes sizes.erpls_bytes;
    let show kind name =
      let lists = Trex.Rpl.catalog (Trex.index engine) kind in
      Printf.printf "%s lists: %d\n" name (List.length lists);
      List.iter
        (fun (term, sid, entries, bytes) ->
          Printf.printf "  %-20s sid %-6d %6d entries %8d bytes\n" term sid entries
            bytes)
        lists
    in
    show Trex.Rpl.Rpl "RPL";
    show Trex.Rpl.Erpl "ERPL";
    (* Everything the registry saw while this process attached and read
       the catalogs: pager cache traffic plus the per-strategy run
       counters (zero until queries run in this process). *)
    Printf.printf "observability:\n";
    Format.printf "  @[<v>%a@]@." Trex.Obs.Metrics.pp ();
    Trex.Env.close storage
  in
  Cmd.v (Cmd.info "stats" ~doc:"Show index statistics") Term.(const run $ env_arg)

(* ---- advise ---- *)

(* Workload file: one query per line, "frequency <TAB> k <TAB> nexi". *)
let parse_workload engine path =
  let lines = String.split_on_char '\n' (read_file path) in
  let specs =
    List.filter_map
      (fun line ->
        let line = String.trim line in
        if line = "" || line.[0] = '#' then None
        else
          match String.split_on_char '\t' line with
          | [ f; k; nexi ] -> Some (float_of_string f, int_of_string k, nexi)
          | _ -> failwith ("bad workload line: " ^ line))
      lines
  in
  Trex.Workload.create
    (List.mapi
       (fun i (frequency, k, nexi) ->
         let t = Trex.translate engine (Trex.parse engine nexi) in
         {
           Trex.Workload.id = Printf.sprintf "q%d" (i + 1);
           sids = Trex.Translate.all_sids t;
           terms = Trex.Translate.all_terms t;
           k;
           frequency;
         })
       specs)

let advise_cmd =
  let workload =
    Arg.(required & opt (some string) None
         & info [ "workload" ] ~doc:"workload file: frequency<TAB>k<TAB>nexi per line")
  in
  let budget =
    Arg.(required & opt (some int) None & info [ "budget" ] ~doc:"disk budget in bytes")
  in
  let optimal = Arg.(value & flag & info [ "optimal" ] ~doc:"use branch-and-bound") in
  let apply = Arg.(value & flag & info [ "apply" ] ~doc:"materialize the plan") in
  let run env workload budget optimal apply =
    let storage = Trex.Env.on_disk env in
    let engine = Trex.attach ~env:storage () in
    let w = parse_workload engine workload in
    let plan, profiles = Trex.advise engine ~workload:w ~budget ~optimal () in
    List.iter
      (fun (p : Trex.Cost.profile) ->
        Printf.printf "%-6s f=%.2f ERA %.2fms Merge %.2fms TA %.2fms\n" p.id
          p.frequency (p.time_era *. 1e3) (p.time_merge *. 1e3) (p.time_ta *. 1e3))
      profiles;
    Printf.printf "plan (%s): %d bytes, expected saving %.2f ms per query\n"
      (if optimal then "optimal" else "greedy")
      plan.bytes_used
      (plan.expected_saving *. 1e3);
    List.iter
      (fun (id, choice) ->
        Printf.printf "  %-6s -> %s\n" id (Trex.Advisor.choice_to_string choice))
      plan.decisions;
    (* Measurement materialized everything; keep only the plan if asked,
       otherwise drop it all. *)
    Trex.Rpl.drop_all (Trex.index engine) Trex.Rpl.Rpl;
    Trex.Rpl.drop_all (Trex.index engine) Trex.Rpl.Erpl;
    if apply then begin
      Trex.Advisor.apply (Trex.index engine) ~scoring:(Trex.scoring engine) ~workload:w
        plan;
      Printf.printf "plan applied.\n"
    end;
    Trex.Env.close storage
  in
  Cmd.v (Cmd.info "advise" ~doc:"Plan index selection for a workload")
    Term.(const run $ env_arg $ workload $ budget $ optimal $ apply)

(* ---- shard ---- *)

module Shard = Trex_shard.Shard
module Supervisor = Trex_shard.Supervisor

let shard_dir_arg =
  Arg.(required & opt (some string) None
       & info [ "dir" ] ~doc:"shard coordinator directory")

let shard_create_cmd =
  let src =
    Arg.(required & opt (some string) None & info [ "src" ] ~doc:"directory of .xml files")
  in
  let shards =
    Arg.(value & opt int 2 & info [ "shards" ] ~doc:"number of shards")
  in
  let alias = Arg.(value & opt string "none" & info [ "alias" ] ~doc:"ieee, wiki or none") in
  let run src dir shards alias =
    let files =
      Sys.readdir src |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".xml")
      |> List.sort String.compare
    in
    if files = [] then failwith ("no .xml files in " ^ src);
    let docs = List.map (fun f -> (f, read_file (Filename.concat src f))) files in
    let t0 = Unix.gettimeofday () in
    let t = Shard.create ~dir ~shards ~alias:(alias_of_name alias) docs in
    List.iter
      (fun (i : Shard.shard_info) ->
        Printf.printf "%s: docids %d..%d (%d documents)\n" i.name i.base
          (i.base + i.docs - 1) i.docs)
      (Shard.shards t);
    Shard.close t;
    Printf.printf "sharded %d documents into %d shards under %s in %.1fs\n"
      (List.length docs) shards dir
      (Unix.gettimeofday () -. t0)
  in
  Cmd.v (Cmd.info "create" ~doc:"Partition a collection into shard indexes")
    Term.(const run $ src $ shard_dir_arg $ shards $ alias)

let shard_query_cmd =
  let nexi = Arg.(required & pos 0 (some string) None & info [] ~docv:"NEXI") in
  let k = Arg.(value & opt int 10 & info [ "k" ] ~doc:"answers to return") in
  let method_ =
    Arg.(value & opt (some string) None & info [ "method" ] ~doc:"era|ta|ita|merge")
  in
  let strict = Arg.(value & flag & info [ "strict" ] ~doc:"strict interpretation") in
  let deadline_ms =
    Arg.(value & opt (some float) None
         & info [ "deadline-ms" ]
             ~doc:"wall-clock budget for the whole scatter-gather; shards \
                   reached after expiry are skipped (exit 3)")
  in
  let page_budget =
    Arg.(value & opt (some int) None
         & info [ "page-budget" ] ~doc:"page-read budget for the whole query (exit 3)")
  in
  let process =
    Arg.(value & flag
         & info [ "process" ]
             ~doc:"run each shard in its own supervised worker process \
                   (crash containment: a dying shard degrades the answer \
                   instead of the coordinator)")
  in
  let fanout =
    Arg.(value & opt (some int) None
         & info [ "fanout" ]
             ~doc:"with $(b,--process): scatter wave size (default: all shards)")
  in
  let trace =
    Arg.(value & flag
         & info [ "trace" ]
             ~doc:"print the merged span tree after the answers; with \
                   $(b,--process) the workers' spans are harvested over the \
                   wire and grafted under each supervisor.worker span")
  in
  let trace_out =
    Arg.(value & opt (some string) None
         & info [ "trace-out" ] ~docv:"FILE"
             ~doc:"write the merged span forest as Chrome trace-event JSON \
                   to $(docv); with $(b,--process) each worker's subtree \
                   lands on its own process track; implies span collection")
  in
  let journal =
    Arg.(value & flag
         & info [ "journal" ]
             ~doc:"journal telemetry for this query: with $(b,--process) one \
                   coordinator record (with per-shard breakdown) in \
                   DIR/query_journal.qj, otherwise per-shard records in each \
                   shard's own journal")
  in
  let run dir nexi k method_ strict deadline_ms page_budget process fanout
      trace trace_out journal =
    let want_trace = trace || trace_out <> None in
    if want_trace then Trex.Obs.Span.set_enabled true;
    if journal then Trex.Obs.Journal.set_enabled true;
    let m =
      Option.map
        (function
          | "era" -> Trex.Strategy.Era_method
          | "ta" -> Trex.Strategy.Ta_method
          | "ita" -> Trex.Strategy.Ita_method
          | "merge" -> Trex.Strategy.Merge_method
          | other -> failwith (Printf.sprintf "unknown method %S" other))
        method_
    in
    let r =
      if process then begin
        (* Open/close first so rebalance recovery and the stale-artifact
           sweep run; the supervisor itself only reads the map. *)
        Shard.close (Shard.open_ dir);
        let s = Supervisor.create dir in
        Fun.protect
          ~finally:(fun () -> Supervisor.close s)
          (fun () ->
            ignore (Supervisor.await_healthy s);
            Supervisor.query s ~k ?method_:m ~strict ?deadline_ms ?page_budget
              ?fanout nexi)
      end
      else begin
        let t = Shard.open_ dir in
        Fun.protect
          ~finally:(fun () -> Shard.close t)
          (fun () -> Shard.query t ~k ?method_:m ~strict ?deadline_ms ?page_budget nexi)
      end
    in
    Printf.printf "%d answers from %d shard(s)\n" (List.length r.answers)
      (List.length r.reports);
    List.iter
      (fun (s : Shard.shard_report) ->
        Printf.printf "  %s: %s %d entries %.2f ms kept=%d floor=%.4f\n" s.r_shard
          (match s.r_method with
          | Some m -> Trex.Strategy.method_to_string m
          | None -> "-")
          s.r_entries_read
          (s.r_elapsed_seconds *. 1000.0)
          s.r_kept s.r_floor)
      r.reports;
    List.iteri
      (fun i (e : Trex.Answer.entry) ->
        Printf.printf "%2d. [%.4f] doc=%d sid=%d end=%d\n" (i + 1) e.score
          e.element.Trex.Types.docid e.element.Trex.Types.sid
          e.element.Trex.Types.endpos)
      r.answers;
    if r.degraded then begin
      Printf.printf "DEGRADED: answers are a sound ranking of the surviving shards\n";
      List.iter
        (fun (name, reason) -> Printf.printf "  missing %s: %s\n" name reason)
        r.degraded_shards
    end;
    if trace then begin
      Printf.printf "trace:\n";
      Format.printf "%a@." Trex.Obs.Span.pp_tree (Trex.Obs.Span.roots ())
    end;
    (match trace_out with
    | Some path ->
        Trex.Obs.Export.write path
          [
            {
              Trex.Obs.Export.p_pid = Unix.getpid ();
              p_name = (if process then "trex coordinator" else "trex");
              p_spans = Trex.Obs.Span.roots ();
            };
          ];
        Printf.printf "trace written to %s\n" path
    | None -> ());
    if journal then
      if process then
        Printf.printf "journaled to %s\n"
          (Filename.concat dir "query_journal.qj")
      else
        Printf.printf
          "journaled per shard (inspect with: trex journal tail --env \
           %s/<shard>)\n"
          dir;
    if r.degraded then exit 3
  in
  Cmd.v (Cmd.info "query" ~doc:"Scatter-gather a NEXI query across the shards")
    Term.(const run $ shard_dir_arg $ nexi $ k $ method_ $ strict $ deadline_ms
          $ page_budget $ process $ fanout $ trace $ trace_out $ journal)

let shard_health_cmd =
  let workers =
    Arg.(value & flag
         & info [ "workers" ]
             ~doc:"also spawn the process supervisor and report the worker \
                   table (state, pid, restarts, breaker, heartbeat age)")
  in
  let run dir workers =
    let t = Shard.open_ dir in
    let rows = Shard.health t in
    List.iter
      (fun (h : Shard.health) ->
        Printf.printf "%s: docids %d..%d %s breaker=%s%s\n" h.h_shard h.h_base
          (h.h_base + h.h_docs - 1)
          (if h.h_attached then "attached" else "QUARANTINED")
          (Trex.Breaker.state_to_string h.h_breaker)
          (match h.h_note with Some n -> " (" ^ n ^ ")" | None -> ""))
      rows;
    List.iter (Printf.printf "unresolved: %s\n") (Shard.unresolved t);
    let unresolved = Shard.unresolved t <> [] in
    let quarantined = List.exists (fun (h : Shard.health) -> not h.h_attached) rows in
    let open_breaker =
      List.exists (fun (h : Shard.health) -> h.h_breaker = Trex.Breaker.Open) rows
    in
    Shard.close t;
    let workers_unhealthy =
      if not workers then false
      else begin
        let s = Supervisor.create dir in
        Fun.protect
          ~finally:(fun () -> Supervisor.close s)
          (fun () ->
            let healthy = Supervisor.await_healthy s in
            Printf.printf "workers:\n";
            List.iter
              (fun (h : Supervisor.worker_health) ->
                Printf.printf
                  "  %s: state=%s pid=%s restarts=%d/%d-lifetime breaker=%s \
                   beat=%s\n"
                  h.w_shard
                  (match h.w_state with
                  | Supervisor.Starting -> "starting"
                  | Supervisor.Ready -> "ready"
                  | Supervisor.Busy -> "busy"
                  | Supervisor.Stopped -> "stopped"
                  | Supervisor.Escalated -> "escalated")
                  (match h.w_pid with Some p -> string_of_int p | None -> "-")
                  h.w_restarts h.w_total_restarts
                  (Trex.Breaker.state_to_string h.w_breaker)
                  (match h.w_beat_age_s with
                  | Some a -> Printf.sprintf "%.1fs" a
                  | None -> "-"))
              (Supervisor.health s);
            not healthy)
      end
    in
    if unresolved || quarantined then exit 2
    else if open_breaker || workers_unhealthy then exit 4
  in
  Cmd.v
    (Cmd.info "health"
       ~doc:"Report shard map, attachment and breaker state (exit 2 quarantined, 4 open breaker; with --workers, also the supervised worker-process table)")
    Term.(const run $ shard_dir_arg $ workers)

let shard_rebalance_cmd =
  let split =
    Arg.(value & opt (some string) None & info [ "split" ] ~doc:"shard to split in two")
  in
  let merge =
    Arg.(value & opt (some string) None
         & info [ "merge" ] ~doc:"two adjacent shards to merge, as A,B")
  in
  let crash_at =
    Arg.(value & opt (some string) None
         & info [ "crash-at" ]
             ~doc:"test hook: simulate a crash at this rebalance point (e.g. \
                   rebalance:committed)")
  in
  let run dir split merge crash_at =
    let t = Shard.open_ dir in
    if Shard.unresolved t <> [] then begin
      List.iter (Printf.printf "unresolved: %s\n") (Shard.unresolved t);
      Shard.close t;
      exit 2
    end;
    (match crash_at with
    | Some point ->
        Shard.set_op_hook t
          (Some
             (fun p ->
               if p = point then
                 raise (Trex_storage.Pager.Injected_crash ("crash-at " ^ point))))
    | None -> ());
    (try
       match (split, merge) with
       | Some name, None ->
           let a, b = Shard.split t name in
           Printf.printf "split %s -> %s (%d docs) + %s (%d docs)\n" name a.name
             a.docs b.name b.docs
       | None, Some pair -> (
           match String.split_on_char ',' pair with
           | [ a; b ] ->
               let m = Shard.merge t (String.trim a) (String.trim b) in
               Printf.printf "merged %s -> %s (%d docs)\n" pair m.name m.docs
           | _ -> failwith "merge expects two shard names: A,B")
       | _ -> failwith "rebalance needs exactly one of --split or --merge"
     with Trex_storage.Pager.Injected_crash note ->
       (* The simulated crash abandons everything unflushed, like the
          real thing; the next open resolves the pending operation. *)
       Shard.abort t;
       Printf.printf "simulated crash: %s\n" note;
       exit 1);
    Shard.close t
  in
  Cmd.v
    (Cmd.info "rebalance"
       ~doc:"Split or merge shards through the crash-atomic manifest protocol")
    Term.(const run $ shard_dir_arg $ split $ merge $ crash_at)

let shard_cmd =
  Cmd.group
    (Cmd.info "shard" ~doc:"Sharded scatter-gather coordinator")
    [ shard_create_cmd; shard_query_cmd; shard_health_cmd; shard_rebalance_cmd ]

(* ---- serve / client: the network front door ---- *)

module Serve = Trex_serve.Serve
module Wire = Trex_shard.Wire

let parse_remotes specs =
  List.map
    (fun spec ->
      match String.index_opt spec '=' with
      | Some i ->
          ( String.sub spec 0 i,
            String.sub spec (i + 1) (String.length spec - i - 1) )
      | None ->
          failwith (Printf.sprintf "--remote expects NAME=HOST:PORT, got %S" spec))
    specs

let method_of_string = function
  | "era" -> Trex.Strategy.Era_method
  | "ta" -> Trex.Strategy.Ta_method
  | "ita" -> Trex.Strategy.Ita_method
  | "merge" -> Trex.Strategy.Merge_method
  | other -> failwith (Printf.sprintf "unknown method %S" other)

let serve_cmd =
  let dir =
    Arg.(required & opt (some string) None
         & info [ "dir" ] ~docv:"DIR"
             ~doc:"index environment, or shard-coordinator directory \
                   (detected by SHARDMAP.json) served through supervised \
                   worker processes")
  in
  let addr =
    Arg.(value & opt string "127.0.0.1:7690"
         & info [ "addr" ] ~docv:"HOST:PORT"
             ~doc:"listen address (port 0 binds an ephemeral port; the bound \
                   address is printed as SERVING HOST:PORT)")
  in
  let remote =
    Arg.(value & opt_all string []
         & info [ "remote" ] ~docv:"NAME=HOST:PORT"
             ~doc:"serve shard NAME through a long-lived remote worker \
                   (trex shard-worker --listen) instead of a local child; \
                   repeatable")
  in
  let queue_limit =
    Arg.(value & opt int Serve.default_policy.queue_limit
         & info [ "queue-limit" ]
             ~doc:"admitted-but-unstarted requests before new ones are shed")
  in
  let default_deadline_ms =
    Arg.(value & opt float Serve.default_policy.default_deadline_ms
         & info [ "default-deadline-ms" ]
             ~doc:"deadline assigned to requests that carry none")
  in
  let max_deadline_ms =
    Arg.(value & opt float Serve.default_policy.max_deadline_ms
         & info [ "max-deadline-ms" ] ~doc:"clamp on client-requested deadlines")
  in
  let drain_budget_s =
    Arg.(value & opt float Serve.default_policy.drain_budget_s
         & info [ "drain-budget-s" ]
             ~doc:"on SIGTERM, finish or shed queued work within this bound")
  in
  let journal =
    Arg.(value & flag
         & info [ "journal" ]
             ~doc:"also journal backend query telemetry (shed/drained \
                   requests are always journaled to DIR/serve_journal.qj)")
  in
  let run dir addr remote queue_limit default_deadline_ms max_deadline_ms
      drain_budget_s journal =
    if journal then Trex.Obs.Journal.set_enabled true;
    let policy =
      {
        Serve.default_policy with
        queue_limit;
        default_deadline_ms;
        max_deadline_ms;
        drain_budget_s;
      }
    in
    exit
      (Serve.run ~policy ~remote:(parse_remotes remote)
         ~on_ready:(fun bound -> Printf.printf "SERVING %s\n%!" bound)
         ~dir ~addr ())
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Serve an index over TCP with admission control and graceful drain")
    Term.(const run $ dir $ addr $ remote $ queue_limit $ default_deadline_ms
          $ max_deadline_ms $ drain_budget_s $ journal)

let client_cmd =
  let nexi = Arg.(required & pos 0 (some string) None & info [] ~docv:"NEXI") in
  let addr =
    Arg.(required & opt (some string) None
         & info [ "addr" ] ~docv:"HOST:PORT" ~doc:"serve daemon to query")
  in
  let k = Arg.(value & opt int 10 & info [ "k" ] ~doc:"answers to return") in
  let method_ =
    Arg.(value & opt (some string) None & info [ "method" ] ~doc:"era|ta|ita|merge")
  in
  let strict = Arg.(value & flag & info [ "strict" ] ~doc:"strict interpretation") in
  let deadline_ms =
    Arg.(value & opt (some float) None
         & info [ "deadline-ms" ]
             ~doc:"request deadline shipped to the server (clamped by its \
                   policy); the server sheds rather than queueing past it")
  in
  let page_budget =
    Arg.(value & opt (some int) None
         & info [ "page-budget" ] ~doc:"page-read budget shipped to the server")
  in
  let timeout_s =
    Arg.(value & opt float 30.0
         & info [ "timeout-s" ] ~doc:"client-side connect/reply deadline")
  in
  let run addr nexi k method_ strict deadline_ms page_budget timeout_s =
    let cq =
      {
        Wire.c_nexi = nexi;
        c_k = k;
        c_method = Option.map method_of_string method_;
        c_strict = strict;
        c_deadline_ms = deadline_ms;
        c_page_budget = page_budget;
      }
    in
    match
      let c = Serve.Client.connect ~timeout_s addr in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close c)
        (fun () -> Serve.Client.request ~timeout_s c cq)
    with
    | exception Serve.Client.Unreachable msg ->
        Printf.eprintf "unreachable: %s\n" msg;
        exit 7
    | Serve.Client.Draining ->
        Printf.printf "DRAINING: the server is going away; retry elsewhere\n";
        exit 7
    | Serve.Client.Shed { retry_after_ms; reason } ->
        Printf.printf "SHED: %s (retry after %.0f ms)\n" reason retry_after_ms;
        exit 6
    | Serve.Client.Answer a ->
        Printf.printf "%d answers (k=%d) in %.2f ms%s\n"
          (List.length a.Wire.ca_answers)
          a.Wire.ca_k
          (a.Wire.ca_elapsed_s *. 1000.0)
          (match a.Wire.ca_method with Some m -> " via " ^ m | None -> "");
        List.iteri
          (fun i (e : Trex.Answer.entry) ->
            Printf.printf "%2d. [%.4f] doc=%d sid=%d end=%d\n" (i + 1) e.score
              e.element.Trex.Types.docid e.element.Trex.Types.sid
              e.element.Trex.Types.endpos)
          a.Wire.ca_answers;
        if a.Wire.ca_degraded then begin
          Printf.printf "DEGRADED: answers are a sound but possibly-partial ranking\n";
          List.iter
            (fun (source, reason) -> Printf.printf "  %s: %s\n" source reason)
            a.Wire.ca_tags;
          exit 3
        end
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:"Query a serve daemon (exit 0 ok, 3 degraded, 6 shed, 7 \
             draining/unreachable)")
    Term.(const run $ addr $ nexi $ k $ method_ $ strict $ deadline_ms
          $ page_budget $ timeout_s)

let () =
  (* Worker mode dispatches before cmdliner: the supervisor execs this
     very binary with a fixed argv and the protocol already wired onto
     stdin/stdout, so no flag parsing may touch those fds first. *)
  (match Array.to_list Sys.argv with
  | _ :: "shard-worker" :: rest ->
      let rec get_opt key = function
        | k :: v :: _ when k = key -> Some v
        | _ :: tl -> get_opt key tl
        | [] -> None
      in
      let get key =
        match get_opt key rest with
        | Some v -> v
        | None ->
            prerr_endline ("shard-worker: missing " ^ key);
            exit 2
      in
      let dir = get "--dir" and shard = get "--shard" in
      (match get_opt "--listen" rest with
      | Some addr -> Supervisor.worker_listen ~dir ~shard ~addr ()
      | None -> Supervisor.worker_main ~dir ~shard ())
  | _ -> ());
  let doc = "TReX: self-managing top-k (summary, keyword) indexes for XML retrieval" in
  let info = Cmd.info "trex" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ gen_cmd; index_cmd; add_cmd; query_cmd; materialize_cmd; stats_cmd; advise_cmd; vacuum_cmd; verify_cmd; health_cmd; journal_cmd; autopilot_cmd; xpath_cmd; shard_cmd; serve_cmd; client_cmd ]))
